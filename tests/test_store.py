"""Tests for the interned columnar fact store (``repro.store``).

The central contract is *differential*: the columnar backend — interned
term ids, integer-row kernels, block-id read sets, batched set-at-a-time
deciding, columnar snapshots — must return byte-identical answers to the
object-level reference implementation, across complexity bands, random
workloads, mutation streams, and process boundaries.  On top of that:
intern-table invariants (dense ids, append-only stability, hash-salt-safe
serialization), store integrity under swap-remove deletion, and snapshot
round-trips.
"""

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro import CertaintySession, UncertainDatabase, parse_facts, parse_query
from repro.engine import ParallelCertaintySession
from repro.model.atoms import RelationSchema
from repro.model.symbols import Constant, Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.evaluation import FactIndex
from repro.query.families import path_query
from repro.store import (
    ColumnarFactIndex,
    ColumnarFactStore,
    ColumnarSnapshot,
    InternTable,
    global_intern_table,
    stale_block_keys,
)
from repro.workloads import mutation_stream, apply_mutation, synthetic_instance


def open_variant(query, variable_name):
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


# --------------------------------------------------------------------------------
# Intern table
# --------------------------------------------------------------------------------


class TestInternTable:
    def test_dense_ids_in_first_intern_order(self):
        table = InternTable()
        a, b, c = Constant("a"), Constant("b"), Constant(3)
        assert [table.intern(x) for x in (a, b, c)] == [0, 1, 2]
        assert table.intern(b) == 1  # idempotent, never reassigned
        assert len(table) == 3

    def test_decode_round_trip(self):
        table = InternTable()
        constants = (Constant("x"), Constant(7), Constant(("p", 2)))
        ids = table.intern_many(constants)
        assert table.decode(ids) == constants
        assert table.constant(ids[1]) == Constant(7)

    def test_id_of_does_not_intern(self):
        table = InternTable()
        assert table.id_of(Constant("nope")) is None
        assert len(table) == 0

    def test_snapshot_and_pickle_preserve_ids(self):
        table = InternTable()
        ids = table.intern_many((Constant("a"), Constant(5), Constant(("t", 1))))
        rebuilt = InternTable.from_snapshot(table.snapshot())
        assert rebuilt.decode(ids) == table.decode(ids)
        pickled = pickle.loads(pickle.dumps(table))
        assert pickled.decode(ids) == table.decode(ids)
        assert pickled.intern(Constant("a")) == table.intern(Constant("a"))

    def test_global_table_is_shared(self):
        assert global_intern_table() is global_intern_table()
        cid = global_intern_table().intern(Constant("shared-sentinel"))
        assert global_intern_table().id_of(Constant("shared-sentinel")) == cid

    def test_memory_stats_shape(self):
        table = InternTable()
        table.intern(Constant("a"))
        stats = table.memory_stats()
        assert stats["constants"] == 1
        assert stats["total_bytes"] > 0

    def test_live_fraction_tracks_stored_rows(self):
        table = InternTable()
        store = ColumnarFactStore(table=table)
        schema = RelationSchema("R", 2, 1)
        facts = [schema.fact(f"k{i}", f"v{i}") for i in range(4)]
        for fact in facts:
            store.add_fact(fact)
        stats = table.memory_stats()
        assert stats["live_constants"] == len(table) == 8
        assert stats["live_fraction"] == 1.0
        for fact in facts[:3]:  # discard 3 of 4 rows: 6 of 8 ids go dead
            store.discard_fact(fact)
        stats = table.memory_stats()
        assert stats["live_constants"] == 2
        assert stats["live_fraction"] == pytest.approx(2 / 8)
        assert table.live_ids() == sorted(table.id_of(c) for c in facts[3].terms)

    def test_live_counts_survive_shared_ids(self):
        """An id referenced by two rows stays live until both are removed."""
        table = InternTable()
        store = ColumnarFactStore(table=table)
        schema = RelationSchema("R", 2, 1)
        f1, f2 = schema.fact("k1", "shared"), schema.fact("k2", "shared")
        store.add_fact(f1)
        store.add_fact(f2)
        shared_id = table.id_of(Constant("shared"))
        store.discard_fact(f1)
        assert shared_id in table.live_ids()
        store.discard_fact(f2)
        assert shared_id not in table.live_ids()
        assert table.live_count() == 0

    def test_empty_table_is_fully_live_by_convention(self):
        assert InternTable().memory_stats()["live_fraction"] == 1.0

    def test_unpickled_tables_intern_identically_under_other_hash_seeds(self):
        """Mirrors the Atom hash-salt test: shipped tables must agree with
        locally interned constants in a worker whose PYTHONHASHSEED differs."""
        table = InternTable()
        ids = table.intern_many((Constant("a"), Constant("b"), Constant(17)))
        blob = pickle.dumps(table)
        probe = (
            "import pickle, sys\n"
            f"sys.path.insert(0, {os.path.abspath('src')!r})\n"
            "from repro.model.symbols import Constant\n"
            f"table = pickle.loads({blob!r})\n"
            f"assert table.intern(Constant('a')) == {ids[0]}\n"
            f"assert table.intern(Constant('b')) == {ids[1]}\n"
            f"assert table.intern(Constant(17)) == {ids[2]}\n"
            "assert table.decode((0, 1, 2)) == "
            "(Constant('a'), Constant('b'), Constant(17))\n"
            "assert table.intern(Constant('fresh')) == 3\n"
        )
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", probe],
                env={**os.environ, "PYTHONHASHSEED": hash_seed},
                capture_output=True,
                text=True,
            )
            assert result.returncode == 0, result.stderr


# --------------------------------------------------------------------------------
# Columnar store
# --------------------------------------------------------------------------------


def _schema_r():
    return RelationSchema("R", 3, 1)


class TestColumnarFactStore:
    def test_add_discard_membership(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        f1, f2 = R.fact("a", "b", "c"), R.fact("a", "x", "y")
        assert store.add_fact(f1) is not None
        assert store.add_fact(f1) is None  # idempotent
        store.add_fact(f2)
        assert len(store) == 2
        assert store.contains_fact(f1) and store.contains_fact(f2)
        assert not store.contains_fact(R.fact("z", "z", "z"))
        store.discard_fact(f1)
        assert not store.contains_fact(f1) and store.contains_fact(f2)
        assert len(store) == 1

    def test_columns_stay_dense_under_swap_remove(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        facts = [R.fact(f"k{i}", f"v{i}", f"w{i}") for i in range(8)]
        for fact in facts:
            store.add_fact(fact)
        rng = random.Random(3)
        rng.shuffle(facts)
        for fact in facts[:5]:
            store.discard_fact(fact)
        columns = store.relation_columns("R")
        # Column arrays, row index, and block slices must agree exactly.
        n = len(columns.row_index)
        assert all(len(column) == n for column in columns.columns)
        for row, position in columns.row_index.items():
            assert tuple(column[position] for column in columns.columns) == row
        remaining = {tuple(store.decode_row(r)) for r in store.relation_rows("R")}
        assert remaining == {f.terms for f in facts[5:]}

    def test_block_slices(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        a1, a2, b1 = R.fact("a", "1", "x"), R.fact("a", "2", "y"), R.fact("b", "1", "x")
        for fact in (a1, a2, b1):
            store.add_fact(fact)
        key_a = (store.table.id_of(Constant("a")),)
        assert {store.decode_row(r) for r in store.block_rows("R", key_a)} == {
            a1.terms,
            a2.terms,
        }
        assert store.block_rows("R", (10**6,)) == ()
        assert store.block_rows("S", key_a) == ()

    def test_block_ids_are_stable_across_empty_and_refill(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        fact = R.fact("a", "1", "x")
        store.add_fact(fact)
        bid = store.known_block_id("R", (Constant("a"),))
        assert bid is not None
        assert store.decode_block_key(bid) == ("R", (Constant("a"),))
        store.discard_fact(fact)
        # The id survives the block emptying out and is reused on refill.
        assert store.known_block_id("R", (Constant("a"),)) == bid
        store.add_fact(R.fact("a", "2", "z"))
        assert store.known_block_id("R", (Constant("a"),)) == bid
        assert store.known_block_id("R", (Constant("never-seen"),)) is None

    def test_signature_conflict_rejected(self):
        store = ColumnarFactStore(table=InternTable())
        store.add_fact(RelationSchema("R", 2, 1).fact("a", "b"))
        with pytest.raises(ValueError):
            store.add_fact(RelationSchema("R", 2, 2).fact("a", "b"))

    def test_snapshot_round_trip(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=5, witnesses=6)
        store = ColumnarFactStore(tuple(db.facts), table=InternTable())
        snapshot = store.snapshot()
        assert isinstance(snapshot, ColumnarSnapshot)
        assert len(snapshot) == len(db)
        assert set(snapshot.iter_facts()) == set(db.facts)
        # The pickled wire format decodes identically.
        shipped = pickle.loads(pickle.dumps(snapshot))
        assert set(shipped.iter_facts()) == set(db.facts)
        rebuilt = ColumnarFactStore.from_snapshot(shipped, table=InternTable())
        assert {f for f in rebuilt.decode_facts()} == set(db.facts)

    def test_snapshot_is_immutable_under_later_mutation(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        store.add_fact(R.fact("a", "1", "x"))
        snapshot = store.snapshot()
        store.add_fact(R.fact("b", "2", "y"))
        store.discard_fact(R.fact("a", "1", "x"))
        assert {f.terms for f in snapshot.iter_facts()} == {R.fact("a", "1", "x").terms}

    def test_memory_stats(self):
        R = _schema_r()
        store = ColumnarFactStore(table=InternTable())
        store.add_fact(R.fact("a", "1", "x"))
        stats = store.memory_stats()
        assert stats["facts"] == 1
        assert stats["column_bytes"] == 3 * store.relation_columns("R").columns[0].itemsize


# --------------------------------------------------------------------------------
# Columnar index: FactIndex-compatible plus the store twin
# --------------------------------------------------------------------------------


class TestColumnarFactIndex:
    def test_tracks_object_index_under_mutation_stream(self):
        """Both representations stay consistent while observing mutations."""
        query = open_variant(path_query(3), "x1")
        for seed in range(3):
            db = synthetic_instance(query, seed=seed, domain_size=5, witnesses=6)
            reference = FactIndex(db.facts)
            columnar = ColumnarFactIndex(db.facts)
            db.register_observer(reference)
            db.register_observer(columnar)
            for batch in mutation_stream(
                query, db, steps=25, seed=seed + 11, domain_size=5
            ):
                for op in batch:
                    apply_mutation(db, op)
            assert len(columnar) == len(reference) == len(db)
            assert set(columnar) == set(reference)
            for name in reference.relations():
                assert set(columnar.relation(name)) == set(reference.relation(name))
            store = columnar.store
            assert len(store) == len(db)
            assert set(store.decode_facts()) == set(db.facts)

    def test_observer_aliases_hit_the_store(self):
        """The observer protocol must rebind to the overridden add/discard."""
        query, schema, db = _emp_dept()
        index = ColumnarFactIndex(db.facts)
        db.register_observer(index)
        fact = schema["Emp"].fact("eve", "db")
        db.add(fact)
        assert fact in index and index.store.contains_fact(fact)
        db.discard(fact)
        assert fact not in index and not index.store.contains_fact(fact)


def _emp_dept():
    query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
    schema = query.schema()
    db = UncertainDatabase(
        parse_facts(
            [
                "Emp('ada' | 'db')",
                "Emp('bob' | 'os')",
                "Emp('bob' | 'net')",
                "Dept('db' | 'Mons')",
                "Dept('os' | 'Mons')",
                "Dept('net' | 'Paris')",
            ],
            schema=schema,
        )
    )
    return query, schema, db


# --------------------------------------------------------------------------------
# Differential: columnar backend == object backend
# --------------------------------------------------------------------------------


def band_cases():
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(open_variant(path_query(3), "x1"), False, id="fo-band"),
        pytest.param(path_query(2), False, id="fo-band-boolean"),
        pytest.param(open_variant(figure4_query(), "x"), False, id="ptime-not-fo"),
        pytest.param(open_variant(figure2_q1(), "z"), True, id="conp-band"),
        pytest.param(selfjoin, True, id="self-join-per-grounding"),
    ]


class TestBackendDifferential:
    @pytest.mark.parametrize("query,allow", band_cases())
    def test_certain_answers_agree(self, query, allow):
        for seed in range(4):
            db = synthetic_instance(
                query, seed=seed, domain_size=4, witnesses=5, conflict_rate=0.5
            )
            with CertaintySession(db, backend="object", allow_exponential=allow) as ref:
                with CertaintySession(
                    db, backend="columnar", allow_exponential=allow
                ) as col:
                    if query.is_boolean:
                        assert ref.is_certain(query) == col.is_certain(query)
                    else:
                        assert ref.certain_answers(query) == col.certain_answers(query)
                        assert ref.candidate_answers(query) == col.candidate_answers(
                            query
                        )

    def test_batched_decide_matches_per_candidate_loop(self):
        query = open_variant(path_query(3), "x1")
        for seed in range(4):
            db = synthetic_instance(
                query, seed=seed, domain_size=5, witnesses=8, conflict_rate=0.6
            )
            with CertaintySession(db) as session:
                plan = session.plan_for(query)
                assert plan.batched_fo
                candidates = session.candidate_answers(query)
                batched = session.decide_candidates(query, candidates)
                support = {}  # forces the per-candidate instrumented loop
                per_candidate = session.decide_candidates(
                    query, candidates, support=support
                )
                assert batched == per_candidate
                assert set(support) == set(candidates)

    def test_batched_decide_preserves_input_order(self):
        query, schema, db = _emp_dept()
        with CertaintySession(db) as session:
            candidates = list(reversed(session.candidate_answers(query)))
            decided = session.decide_candidates(query, candidates)
            assert decided  # ada and bob are certain in the quickstart db
            positions = [candidates.index(c) for c in decided]
            assert positions == sorted(positions)

    def test_purify_sweeps_agree(self):
        from repro.certainty import purify

        query = path_query(3)
        for seed in range(4):
            db = synthetic_instance(
                query, seed=seed, domain_size=4, witnesses=4, conflict_rate=0.5
            )
            obj = purify(db, query, index=FactIndex(db.facts))
            col = purify(db, query, index=ColumnarFactIndex(db.facts))
            assert set(obj.facts) == set(col.facts)

    def test_stale_block_keys_matches_object_definition(self):
        from repro.certainty.purify import relevant_facts

        query = path_query(2)
        for seed in range(4):
            db = synthetic_instance(query, seed=seed, domain_size=4, witnesses=3)
            index = ColumnarFactIndex(db.facts)
            used = relevant_facts(db, query, FactIndex(db.facts))
            expected = {f.block_key for f in db.facts if f not in used}
            assert set(stale_block_keys(query, index.store)) == expected

    def test_formula_evaluation_agrees_on_equality_and_negation(self):
        from repro.fo.compile import compile_formula
        from repro.fo.formulas import And, AtomFormula, Equals, Exists, Not

        R = RelationSchema("R", 2, 1)
        x, y = Variable("x"), Variable("y")
        formula = Exists(
            [x, y],
            And(
                [
                    AtomFormula(R.atom(x, y)),
                    Not(Equals(x, Constant("a"))),
                ]
            ),
        )
        plan = compile_formula(formula)
        rng = random.Random(0)
        for _ in range(20):
            db = UncertainDatabase()
            for _ in range(6):
                db.add(R.fact(rng.choice("abc"), rng.choice("abc")))
            obj = plan.evaluate(db, index=FactIndex(db.facts))
            col = plan.evaluate(db, index=ColumnarFactIndex(db.facts))
            assert obj == col


# --------------------------------------------------------------------------------
# Parallel: columnar snapshots across process boundaries
# --------------------------------------------------------------------------------


class TestColumnarParallel:
    def test_process_pool_matches_sequential_with_columnar_snapshot(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=2, domain_size=6, witnesses=12)
        with CertaintySession(db) as sequential:
            expected = sequential.certain_answers(query)
        with ParallelCertaintySession(
            db, max_workers=2, mode="process", min_parallel_candidates=1
        ) as parallel:
            assert parallel._inner.store is not None  # snapshot path active
            assert parallel.certain_answers(query) == expected

    def test_worker_read_sets_come_back_portable(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=4, domain_size=6, witnesses=12)
        with ParallelCertaintySession(
            db, max_workers=2, mode="process", min_parallel_candidates=1
        ) as parallel:
            candidates = parallel._inner.candidate_answers(query)
            support = {}
            parallel.decide_candidates(query, candidates, support=support)
        assert set(support) == set(candidates)
        for read_set in support.values():
            # Worker-local block ids must never leak across the boundary.
            assert not read_set.block_ids
            if not read_set.is_global:
                assert read_set.blocks or read_set.relations

    def test_snapshot_pickle_is_smaller_than_fact_graph(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=5, domain_size=6, witnesses=40)
        store = ColumnarFactStore(tuple(db.facts), table=InternTable())
        object_bytes = len(pickle.dumps(db.facts))
        columnar_bytes = len(pickle.dumps(store.snapshot()))
        assert columnar_bytes < object_bytes
