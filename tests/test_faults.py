"""Chaos tests: deterministic fault injection + supervised containment.

The robustness contract is differential: under **any** fault schedule —
worker kills, dispatch stalls, dropped pipes, torn WAL writes, fsync
errors, interrupted checkpoints — every certain answer served must equal
a fault-free sequential recompute, and every batch acknowledged by the
durability tier must survive a crash.  Fault schedules are derived from
seeds (:meth:`FaultPlan.random`), so a failing schedule reproduces from
its seed alone.
"""

import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro import (
    CertaintyService,
    ShardedCertaintySession,
    certain_answers,
    parse_facts,
    parse_query,
)
from repro.durability import DurabilityError, DurableStore
from repro.engine.parallel import ParallelCertaintySession
from repro.engine.shards import DeadlineExceeded
from repro.faults import (
    SITE_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    inject,
)
from repro.model.symbols import Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.families import cycle_query_c, path_query
from repro.core.complexity import ComplexityBand
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
    CircuitOpen,
)
from repro.workloads import apply_batch, mutation_stream, synthetic_instance

CHAOS_SHARD_COUNTS = (2, 4)


def open_variant(query, variable_name):
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


def band_workloads():
    """One open-query workload per complexity band of the trichotomy."""
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(
            open_variant(path_query(3), "x1"),
            False,
            dict(domain_size=6, witnesses=12, noise_per_relation=8, conflict_rate=0.5),
            id="fo-band",
        ),
        pytest.param(
            open_variant(figure4_query(), "x"),
            False,
            dict(domain_size=4, witnesses=6, noise_per_relation=3, conflict_rate=0.4),
            id="ptime-not-fo-band",
        ),
        pytest.param(
            open_variant(cycle_query_c(3), "x1"),
            False,
            dict(domain_size=4, witnesses=6, noise_per_relation=3, conflict_rate=0.4),
            id="cycle-band",
        ),
        pytest.param(
            open_variant(figure2_q1(), "z"),
            True,
            dict(domain_size=3, witnesses=4, noise_per_relation=2, conflict_rate=0.4),
            id="conp-band-allow-exponential",
        ),
        pytest.param(
            selfjoin,
            True,
            dict(domain_size=4, witnesses=6, noise_per_relation=4, conflict_rate=0.5),
            id="self-join-per-grounding",
        ),
    ]


#: The shard-runtime chaos sites the differential harness draws from.
SHARD_SITES = ("shard.worker.command", "shard.worker.delta", "shard.pipe")


def chaos_session(db, n_shards, allow):
    """A sharded session tuned for fast supervised recovery in tests."""
    return ShardedCertaintySession(
        db,
        n_shards=n_shards,
        min_shard_candidates=1,
        allow_exponential=allow,
        dispatch_deadline=10.0,
        restart_backoff=0.0,
    )


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        for seed in range(8):
            a = FaultPlan.random(seed, events=4, n_shards=4)
            b = FaultPlan.random(seed, events=4, n_shards=4)
            assert a.specs == b.specs

    def test_seeds_vary_the_schedule(self):
        schedules = {FaultPlan.random(seed, events=4).specs for seed in range(16)}
        assert len(schedules) > 1

    def test_sites_restrict_the_catalogue(self):
        plan = FaultPlan.random(3, sites=["wal.write"], events=5)
        assert all(spec.site == "wal.write" for spec in plan)
        with pytest.raises(ValueError):
            FaultPlan.random(0, sites=["no.such.site"])

    def test_spec_arrival_window(self):
        spec = FaultSpec("s", "kill", at=3, count=2)
        assert [spec.matches(i, None) for i in range(1, 7)] == [
            False, False, True, True, False, False,
        ]
        forever = FaultSpec("s", "kill", at=2, count=0)
        assert not forever.matches(1, None)
        assert all(forever.matches(i, None) for i in range(2, 10))

    def test_spec_shard_pinning(self):
        spec = FaultSpec("shard.pipe", "drop", shard=1)
        assert spec.matches(1, 1)
        assert not spec.matches(1, 0)
        assert not spec.matches(1, None)

    def test_injector_counts_and_fires(self):
        plan = FaultPlan([FaultSpec("x", "error", at=2)])
        with inject(plan) as injector:
            assert injector.fire("x") is None
            fault = injector.fire("x")
            assert fault is not None and fault.kind == "error"
            assert injector.fire("x") is None
            assert injector.arrivals("x") == 3
            assert injector.fired == [("x", "error", 2)]
        assert active_injector() is None

    def test_inject_restores_previous_injector(self):
        with inject(FaultPlan()) as outer:
            with inject(FaultPlan()) as inner:
                assert active_injector() is inner
            assert active_injector() is outer

    def test_catalogue_names_are_stable(self):
        # Hook points compiled into production code reference these names;
        # renaming a site silently disables its chaos coverage.
        assert dict(SITE_KINDS).keys() == {
            "shard.worker.command",
            "shard.worker.delta",
            "shard.pipe",
            "wal.write",
            "wal.fsync",
            "segment.fsync",
            "segment.rename",
            "service.queued",
        }


class TestShardChaosDifferential:
    """Sharded answers under seeded fault schedules == sequential recompute."""

    @pytest.mark.parametrize("query,allow,kwargs", band_workloads())
    @pytest.mark.parametrize("n_shards", CHAOS_SHARD_COUNTS)
    def test_all_bands_survive_worker_chaos(self, query, allow, kwargs, n_shards):
        plan = FaultPlan.random(
            n_shards * 101 + 7, sites=SHARD_SITES, events=3, n_shards=n_shards
        )
        db = synthetic_instance(query, seed=5, **kwargs)
        with inject(plan):
            with chaos_session(db, n_shards, allow) as session:
                assert session.certain_answers(query) == certain_answers(
                    db, query, allow_exponential=allow
                )
                stream = mutation_stream(
                    query, db, steps=5, seed=17, batch_range=(1, 4)
                )
                for batch in stream:
                    apply_batch(db, batch)
                    assert session.certain_answers(query) == certain_answers(
                        db, query, allow_exponential=allow
                    ), f"diverged under {plan!r} at {n_shards} shards"

    def test_seed_sweep_on_the_fo_band(self):
        query = open_variant(path_query(3), "x1")
        for seed in range(4):
            plan = FaultPlan.random(seed, sites=SHARD_SITES, events=4, n_shards=2)
            db = synthetic_instance(query, seed=seed, domain_size=6, witnesses=12)
            with inject(plan):
                with chaos_session(db, 2, False) as session:
                    for batch in mutation_stream(query, db, steps=4, seed=seed):
                        apply_batch(db, batch)
                        assert session.certain_answers(query) == certain_answers(
                            db, query
                        ), f"diverged under seed {seed}"

    def test_stalled_worker_is_contained_by_the_dispatch_deadline(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=2, domain_size=6, witnesses=12)
        plan = FaultPlan(
            [FaultSpec("shard.worker.command", "stall", at=2, delay=1.0, shard=0)]
        )
        with inject(plan):
            with ShardedCertaintySession(
                db,
                n_shards=2,
                min_shard_candidates=1,
                dispatch_deadline=0.1,
                restart_backoff=0.0,
            ) as session:
                expected = certain_answers(db, query)
                assert session.certain_answers(query) == expected
                assert session.certain_answers(query) == expected
                assert session.stats.deadline_timeouts >= 1
                assert session.stats.worker_failures >= 1

    def test_caller_deadline_leaves_workers_alive_and_fences_replies(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=2, domain_size=6, witnesses=12)
        # Stall shard 0's second command (the first post-bootstrap delta)
        # well past the caller's request budget but well inside the 30s
        # dispatch window.  The budget must be generous enough that it is
        # still unspent when the gather starts polling — expiring earlier
        # takes the cheap entry-check path and never reaches the
        # poll-timeout branch this regression pins down.
        plan = FaultPlan(
            [FaultSpec("shard.worker.command", "stall", at=2, delay=1.0, shard=0)]
        )
        with inject(plan):
            with ShardedCertaintySession(
                db,
                n_shards=2,
                min_shard_candidates=1,
                dispatch_deadline=30.0,
                restart_backoff=0.0,
            ) as session:
                with pytest.raises(DeadlineExceeded):
                    session.certain_answers(
                        query, deadline=time.monotonic() + 0.2
                    )
                # The stalled worker was inside its dispatch window when
                # the *caller's* budget ran out: it must stay alive and
                # unpenalised — a tight request deadline is not a fault,
                # and only a blown dispatch window may count as one.
                assert session.stats.worker_failures == 0
                assert session.stats.deadline_timeouts == 0
                assert session.degraded_mode is None
                # The aborted gather left replies in the pipes; the next
                # dispatch must fence them by sequence id instead of
                # pairing stale verdicts with its fresh candidate buckets.
                assert session.certain_answers(query) == certain_answers(
                    db, query
                )
                assert session.stats.stale_replies_dropped >= 1
                assert session.stats.worker_failures == 0

    def test_dropped_pipe_is_contained(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=3, domain_size=6, witnesses=12)
        plan = FaultPlan([FaultSpec("shard.pipe", "drop", at=2, shard=1)])
        with inject(plan):
            with chaos_session(db, 2, False) as session:
                expected = certain_answers(db, query)
                assert session.certain_answers(query) == expected
                db.add(query.atoms[0].relation.fact("fresh", "b"))
                assert session.certain_answers(query) == certain_answers(db, query)
                assert session.stats.worker_failures >= 1


class TestDeltaCrashWatermark:
    """Satellite: a worker crash mid-delta (intern suffix shipped, rows not)
    must never leave a replica with an inconsistent intern watermark."""

    @pytest.mark.parametrize("n_shards", CHAOS_SHARD_COUNTS)
    def test_delta_crash_differential(self, n_shards):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=9, domain_size=6, witnesses=12)
        # Kill the worker *between* the intern-table extend and the row
        # application of its second delta: the crash window where the
        # replica id space has advanced but the rows were lost.
        plan = FaultPlan(
            [FaultSpec("shard.worker.delta", "kill", at=2, shard=s)
             for s in range(n_shards)]
        )
        with inject(plan):
            with chaos_session(db, n_shards, False) as session:
                assert session.certain_answers(query) == certain_answers(db, query)
                for batch in mutation_stream(
                    query, db, steps=6, seed=29, batch_range=(1, 3)
                ):
                    apply_batch(db, batch)
                    assert session.certain_answers(query) == certain_answers(
                        db, query
                    ), f"watermark divergence at {n_shards} shards"
                assert session.stats.worker_failures >= 1
                # The restarted replicas hold exactly the partition again.
                counts = session.shard_fact_counts()
                assert sum(counts) == len(db)


class TestDegradationLadder:
    def test_persistent_failure_degrades_then_probes_back(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=4, domain_size=6, witnesses=12)
        # Every command kills every worker, forever: restarts can never
        # succeed, so the session must walk down the ladder — and still
        # serve exact answers from the degraded tiers.
        plan = FaultPlan([FaultSpec("shard.worker.command", "kill", at=1, count=0)])
        expected = certain_answers(db, query)
        with inject(plan):
            with ShardedCertaintySession(
                db,
                n_shards=2,
                min_shard_candidates=1,
                dispatch_deadline=5.0,
                restart_backoff=0.0,
                degrade_after_failures=2,
                degraded_probe_interval=2,
            ) as session:
                # Each call retries the dead shards once; two failed rounds
                # exhaust degrade_after_failures=2 and step the ladder down.
                assert session.certain_answers(query) == expected
                assert session.certain_answers(query) == expected
                assert session.degraded_mode in ("parallel", "serial")
                assert session.stats.degradations >= 1
                first_mode = session.degraded_mode
                for _ in range(4):  # degraded serving stays exact
                    assert session.certain_answers(query) == expected
                assert session.stats.degraded_decides > 0
                assert session.degraded_mode is not None
        # Faults gone: the next probe climbs back to sharded serving.
        with ShardedCertaintySession(
            db, n_shards=2, min_shard_candidates=1, restart_backoff=0.0
        ) as fresh:
            assert fresh.certain_answers(query) == expected
            assert fresh.degraded_mode is None
        assert first_mode == "parallel"

    def test_probe_recovers_after_faults_clear(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=6, domain_size=6, witnesses=12)
        expected = certain_answers(db, query)
        plan = FaultPlan(
            [FaultSpec("shard.worker.command", "kill", at=1, count=2, shard=0)]
        )
        with ShardedCertaintySession(
            db,
            n_shards=2,
            min_shard_candidates=1,
            restart_backoff=0.0,
            degrade_after_failures=1,
            degraded_probe_interval=1,
        ) as session:
            with inject(plan):
                assert session.certain_answers(query) == expected
                assert session.degraded_mode is not None
            # The injector is gone: within a couple of probes the session
            # must climb back to full sharded serving.
            for _ in range(4):
                assert session.certain_answers(query) == expected
            assert session.degraded_mode is None
            assert session.pool_started

    def test_heartbeat_detects_dead_workers(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=7, domain_size=6, witnesses=12)
        with chaos_session(db, 2, False) as session:
            session.certain_answers(query)
            assert session.heartbeat() == [True, True]
            session._workers[0].process.terminate()
            session._workers[0].process.join(timeout=5)
            alive = session.heartbeat(timeout=1.0)
            assert alive[0] is False
            assert session.stats.heartbeats >= 2
            # The dead worker was declared failed and is restartable.
            assert session.certain_answers(query) == certain_answers(db, query)


class TestDeadlines:
    def test_expired_deadline_raises_before_dispatch(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        with chaos_session(db, 2, False) as session:
            with pytest.raises(DeadlineExceeded):
                session.certain_answers(query, deadline=time.monotonic() - 1.0)
            with pytest.raises(DeadlineExceeded):
                session.decide_candidates(
                    query, [("a",)], deadline=time.monotonic() - 1.0
                )
            with pytest.raises(DeadlineExceeded):
                session.solve(path_query(3), deadline=time.monotonic() - 1.0)
            # A generous deadline serves normally.
            answers = session.certain_answers(
                query, deadline=time.monotonic() + 30.0
            )
            assert answers == certain_answers(db, query)


class TestParallelDispatchFault:
    def test_broken_executor_recovers_with_a_fresh_pool(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=8, domain_size=6, witnesses=12)
        expected = certain_answers(db, query)
        plan = FaultPlan([FaultSpec("parallel.dispatch", "error", at=1)])
        with inject(plan) as injector:
            with ParallelCertaintySession(
                db, mode="thread", min_parallel_candidates=1
            ) as session:
                assert session.certain_answers(query) == expected
            assert ("parallel.dispatch", "error", 1) in injector.fired


class TestDurabilityChaos:
    def _db(self):
        query = parse_query("R(x | y), S(x | 'ok')", free=["x"])
        schema = query.schema()
        facts = parse_facts(
            ["R('a' | 'b')", "R('c' | 'd')", "S('a' | 'ok')", "S('c' | 'ok')"],
            schema=schema,
        )
        return query, schema, facts

    def test_fsync_failure_retries_on_a_fresh_writer(self, tmp_path):
        query, schema, facts = self._db()
        plan = FaultPlan([FaultSpec("wal.fsync", "error", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            db.add(facts[0])
            db.add(facts[1])  # fsync fails once; the commit must still land
            db.add(facts[2])
            assert durable.stats.wal_reopens == 1
            assert not durable.failed
            durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert set(recovered.database().facts) == {facts[0], facts[1], facts[2]}

    def test_torn_write_retries_and_never_acknowledges_garbage(self, tmp_path):
        query, schema, facts = self._db()
        plan = FaultPlan([FaultSpec("wal.write", "torn", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            db.add(facts[0])
            db.add(facts[1])  # torn, truncated back, retried, committed
            assert durable.stats.wal_reopens == 1
            durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert recovered.stats.torn_tail_bytes == 0
        assert set(recovered.database().facts) == {facts[0], facts[1]}

    def test_double_failure_fails_the_batch_without_acknowledging(self, tmp_path):
        query, schema, facts = self._db()
        # Both the first append and its retry fail: the commit must raise
        # and the store must refuse further commits until a checkpoint heals.
        plan = FaultPlan([FaultSpec("wal.write", "torn", at=2, count=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            db.add(facts[0])
            with pytest.raises(DurabilityError):
                db.add(facts[1])
            assert durable.failed
            assert durable.stats.failed_commits == 1
            with pytest.raises(DurabilityError):
                db.add(facts[2])
            # checkpoint() persists the full current state and heals.
            durable.checkpoint()
            assert not durable.failed
            db.add(facts[3])
            durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        # Every fact is present: the failed batches were never lost from
        # the live db, and the healing checkpoint captured them.
        assert set(recovered.database().facts) == set(facts)

    def test_interrupted_checkpoint_keeps_the_old_segment(self, tmp_path):
        query, schema, facts = self._db()
        plan = FaultPlan([FaultSpec("segment.rename", "error", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)  # checkpoint 1 succeeds
            db.add(facts[0])
            with pytest.raises(InjectedFault):
                durable.checkpoint()
            assert durable.stats.failed_checkpoints == 1
            # The orphaned tmp file was swept; the old segment survives.
            assert not list(tmp_path.glob("*.tmp"))
            assert list(tmp_path.glob("segment-*.seg"))
            durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert set(recovered.database().facts) == {facts[0]}

    def test_interrupted_fsync_checkpoint_is_also_swept(self, tmp_path):
        query, schema, facts = self._db()
        plan = FaultPlan([FaultSpec("segment.fsync", "error", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            db.add(facts[0])
            with pytest.raises(InjectedFault):
                durable.checkpoint()
            assert not list(tmp_path.glob("*.tmp"))
            recovered_db = DurableStore.open(tmp_path).database()
            assert set(recovered_db.facts) == {facts[0]}

    def test_orphaned_tmp_files_are_swept_at_open(self, tmp_path):
        query, schema, facts = self._db()
        durable = DurableStore(tmp_path)
        db = durable.database(schema=schema)
        durable.attach(db)
        db.add(facts[0])
        durable.simulate_crash()
        # A crash between tmp write and rename leaves an orphan behind.
        orphan = tmp_path / "segment-000000000099.seg.tmp"
        orphan.write_bytes(b"half-written checkpoint")
        reopened = DurableStore.open(tmp_path)
        assert not orphan.exists()
        assert reopened.stats.tmp_files_swept == 1
        assert set(reopened.database().facts) == {facts[0]}

    def test_epoch_rotation_is_not_adopted_on_a_failed_checkpoint(self, tmp_path):
        query, schema, facts = self._db()
        plan = FaultPlan([FaultSpec("segment.rename", "error", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            epoch_before = durable.epoch
            db.add(facts[0])
            with pytest.raises(InjectedFault):
                durable.checkpoint(rotate=True)
            # The rotation must not have been adopted: WAL records still
            # decode against the pre-rotation epoch.
            assert durable.epoch == epoch_before
            db.add(facts[1])
            durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert set(recovered.database().facts) == {facts[0], facts[1]}

    def test_zero_acknowledged_but_lost_batches_under_seeded_chaos(self, tmp_path):
        """The tentpole invariant: acknowledged == recovered, per seed."""
        query, schema, all_facts = self._db()
        for seed in range(6):
            root = tmp_path / f"seed-{seed}"
            plan = FaultPlan.random(
                seed, sites=["wal.write", "wal.fsync"], events=2, horizon=6
            )
            acknowledged = []
            with inject(plan):
                durable = DurableStore(root)
                db = durable.database(schema=schema)
                durable.attach(db)
                for fact in all_facts:
                    try:
                        db.add(fact)
                    except DurabilityError:
                        durable.checkpoint()  # heal, keep going
                        acknowledged.append(fact)  # checkpoint persisted it
                    else:
                        acknowledged.append(fact)
                durable.simulate_crash()
            recovered = DurableStore.open(root)
            assert set(recovered.database().facts) >= set(acknowledged), (
                f"acknowledged-but-lost batch under {plan!r}"
            )


class TestServiceContainment:
    def _queued_query(self):
        # The coNP band queues onto the worker pool.
        return figure2_q1()

    def _service(self, **kwargs):
        svc = CertaintyService(max_workers=2, queue_depth=4, **kwargs)
        query = self._queued_query()
        svc.create_tenant("acme", facts=synthetic_instance(
            query, seed=2, domain_size=3, witnesses=3
        ).facts)
        return svc, query

    def test_queued_fault_feeds_the_circuit_breaker(self):
        svc, query = self._service(breaker_threshold=2, breaker_cooldown=60.0)
        plan = FaultPlan([FaultSpec("service.queued", "error", at=1, count=2)])
        with svc:
            with inject(plan):
                for _ in range(2):
                    ticket = svc.submit("acme", query)
                    with pytest.raises(OSError):
                        ticket.result(timeout=10.0)
                with pytest.raises(CircuitOpen):
                    svc.submit("acme", query)
            stats = svc.stats()
            assert stats["totals"]["shed"] == 1
            assert stats["totals"]["breaker_opens"] == 1
            assert stats["tenants"]["acme"]["breaker"]["state"] == "open"

    def test_fo_band_stays_inline_while_the_breaker_is_open(self):
        svc, query = self._service(breaker_threshold=1, breaker_cooldown=60.0)
        fo_query = open_variant(path_query(3), "x1")
        plan = FaultPlan([FaultSpec("service.queued", "error", at=1)])
        with svc:
            svc.apply(
                "acme",
                [("add", f) for f in synthetic_instance(
                    fo_query, seed=3, domain_size=4, witnesses=6
                ).facts],
            )
            with inject(plan):
                with pytest.raises(OSError):
                    svc.submit("acme", query).result(timeout=10.0)
                with pytest.raises(CircuitOpen):
                    svc.submit("acme", query)
                # The hot path is never shed.
                ticket = svc.submit("acme", fo_query)
                assert ticket.outcome == "inline"
            assert svc.stats()["totals"]["inline_served"] == 1

    def test_breaker_half_open_probe_closes_on_success(self):
        fake_now = [0.0]
        svc, query = self._service(
            breaker_threshold=1, breaker_cooldown=5.0, clock=lambda: fake_now[0]
        )
        plan = FaultPlan([FaultSpec("service.queued", "error", at=1)])
        with svc:
            with inject(plan):
                with pytest.raises(OSError):
                    svc.submit("acme", query).result(timeout=10.0)
            with pytest.raises(CircuitOpen):
                svc.submit("acme", query)
            fake_now[0] = 6.0  # cooldown over: one half-open probe admitted
            assert svc.submit("acme", query).result(timeout=10.0) is not None
            assert svc.admission.breaker_state("acme")["state"] == "closed"
            # Closed again: submissions flow freely.
            svc.submit("acme", query).result(timeout=10.0)

    def test_request_deadline_fails_fast_in_the_queue(self):
        fake_now = [0.0]
        svc, query = self._service(clock=lambda: fake_now[0])
        with svc:
            ticket = svc.submit("acme", query, deadline=10.0)
            assert ticket.result(timeout=10.0) is not None
            fake_now[0] = 100.0
            stalled = svc.submit("acme", query, deadline=-50.0)
            with pytest.raises(DeadlineExceeded):
                stalled.result(timeout=10.0)
            assert svc.stats()["totals"]["deadline_expired"] == 1

    def test_sharded_tenant_contains_worker_kills(self):
        fo_query = open_variant(path_query(3), "x1")
        facts = synthetic_instance(
            fo_query, seed=4, domain_size=6, witnesses=10
        ).facts
        plan = FaultPlan(
            [FaultSpec("shard.worker.command", "kill", at=3, shard=0)]
        )
        with inject(plan):
            with CertaintyService(shard_workers=2) as svc:
                svc.create_tenant("acme", facts=facts)
                tenant = svc.tenant("acme")
                first = svc.submit("acme", fo_query).result(timeout=30.0)
                second = svc.submit("acme", fo_query).result(timeout=30.0)
                third = svc.submit("acme", fo_query).result(timeout=30.0)
                assert first == second == third
                expected = frozenset(certain_answers(tenant.db, fo_query))
                assert third == expected
                assert svc.stats()["tenants"]["acme"]["sharded"] is not None


class TestBreakerProbeContainment:
    """A half-open probe that never reports back must not wedge the tenant.

    The probing flag is normally cleared by the probe's own success or
    failure; these regressions cover the paths where the probe never runs
    at all — cancelled before a worker picked it up, refused at the
    queue-depth cap, or silently stuck behind other work past its window.
    """

    BAND = ComplexityBand.CONP_COMPLETE

    def _controller(self, **kwargs):
        fake_now = [0.0]
        controller = AdmissionController(
            breaker_threshold=1,
            breaker_cooldown=5.0,
            clock=lambda: fake_now[0],
            **kwargs,
        )
        return controller, fake_now

    def _blocker(self, controller, tenant_id, stats):
        """Occupy the pool's only worker until the returned event is set."""
        release = threading.Event()
        ticket = controller.submit(
            tenant_id,
            figure2_q1(),
            self.BAND,
            lambda: release.wait(10.0) and frozenset(),
            stats,
        )
        return release, ticket

    def _submit(self, controller, stats, thunk=lambda: frozenset()):
        return controller.submit("acme", figure2_q1(), self.BAND, thunk, stats)

    def test_cancelled_probe_unwedges_the_breaker(self):
        controller, fake_now = self._controller(max_workers=1, queue_depth=4)
        stats, other_stats = AdmissionStats(), AdmissionStats()

        def boom():
            raise OSError("injected failure")

        with pytest.raises(OSError):
            self._submit(controller, stats, boom).result(timeout=10.0)
        with pytest.raises(CircuitOpen):
            self._submit(controller, stats)
        fake_now[0] = 6.0  # cooldown over: the next submission is the probe
        release, _blocker = self._blocker(controller, "other", other_stats)
        try:
            probe = self._submit(controller, stats)
            assert probe.cancel()  # cancelled before the busy pool ran it
            # The cancelled probe released its claim, so a fresh probe is
            # admitted instead of CircuitOpen shedding the tenant forever.
            ticket = self._submit(controller, stats)
        finally:
            release.set()
        assert ticket.result(timeout=10.0) == frozenset()
        assert controller.breaker_state("acme")["state"] == "closed"
        controller.close()

    def test_probe_refused_at_the_queue_cap_clears_probing(self):
        controller, fake_now = self._controller(max_workers=1, queue_depth=1)
        stats = AdmissionStats()
        release, blocker = self._blocker(controller, "acme", stats)
        try:
            # Trip the breaker with a result-timeout while the tenant's
            # only queue slot stays occupied by the running blocker.
            with pytest.raises(FutureTimeoutError):
                blocker.result(timeout=0.01)
            fake_now[0] = 6.0  # cooldown over: the next submission probes
            for _ in range(2):
                # Both submissions must be refused at the *cap* — the
                # refused probe may not leave its flag shedding the tenant.
                with pytest.raises(AdmissionRejected) as refused:
                    self._submit(controller, stats)
                assert not isinstance(refused.value, CircuitOpen)
        finally:
            release.set()
        controller.close()

    def test_silent_probe_expires_after_the_cooldown(self):
        controller, fake_now = self._controller(max_workers=1, queue_depth=4)
        stats, other_stats = AdmissionStats(), AdmissionStats()
        release, _blocker = self._blocker(controller, "other", other_stats)
        try:
            queued = self._submit(controller, stats)
            with pytest.raises(FutureTimeoutError):
                queued.result(timeout=0.01)  # trips the breaker
            fake_now[0] = 6.0
            self._submit(controller, stats)  # the probe, stuck in the queue
            with pytest.raises(CircuitOpen):
                self._submit(controller, stats)  # one probe at a time
            fake_now[0] = 12.0  # probe silent past its window: presumed lost
            replacement = self._submit(controller, stats)
        finally:
            release.set()
        assert replacement.result(timeout=10.0) == frozenset()
        controller.close()


class TestChaosSmoke:
    """A fast slice of the chaos surface, suitable for a CI smoke step."""

    def test_sharded_smoke(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=0, domain_size=6, witnesses=10)
        plan = FaultPlan.random(0, sites=SHARD_SITES, events=2, n_shards=2)
        with inject(plan):
            with chaos_session(db, 2, False) as session:
                for batch in mutation_stream(query, db, steps=2, seed=1):
                    apply_batch(db, batch)
                    assert session.certain_answers(query) == certain_answers(
                        db, query
                    )

    def test_durability_smoke(self, tmp_path):
        query, schema, facts = (
            parse_query("R(x | y)", free=["x"]),
            parse_query("R(x | y)", free=["x"]).schema(),
            parse_facts(["R('a' | 'b')", "R('c' | 'd')"],
                        schema=parse_query("R(x | y)", free=["x"]).schema()),
        )
        plan = FaultPlan([FaultSpec("wal.fsync", "error", at=2)])
        with inject(plan):
            durable = DurableStore(tmp_path)
            db = durable.database(schema=schema)
            durable.attach(db)
            for fact in facts:
                db.add(fact)
            durable.simulate_crash()
        assert set(DurableStore.open(tmp_path).database().facts) == set(facts)
