"""Shared helpers for the test suite (importable, unlike conftest fixtures)."""

from repro.model import UncertainDatabase


def random_instance(query, rng, domain_size=3, facts_per_relation=5):
    """A small random database for *query*, used in oracle-agreement tests."""
    db = UncertainDatabase()
    domain = [f"c{i}" for i in range(domain_size)]
    for atom in query.atoms:
        relation = atom.relation
        for _ in range(facts_per_relation):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db
