"""End-to-end tests of the public API surface (the quickstart workflow)."""


import repro
from repro import (
    ComplexityBand,
    UncertainDatabase,
    certain_answers,
    classify,
    is_certain,
    parse_facts,
    parse_query,
)


class TestQuickstart:
    def test_module_docstring_example(self):
        q = parse_query("C(x, y | 'Rome'), R(x | 'A')")
        db = UncertainDatabase(
            parse_facts(
                [
                    "C('PODS', 2016 | 'Rome')",
                    "C('PODS', 2016 | 'Paris')",
                    "C('KDD', 2017 | 'Rome')",
                    "R('PODS' | 'A')",
                    "R('KDD' | 'A')",
                    "R('KDD' | 'B')",
                ],
                schema=q.schema(),
            )
        )
        assert classify(q).band is ComplexityBand.FO
        assert is_certain(db, q) is False

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_certain_answers_workflow(self):
        q = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
        schema = q.schema()
        db = UncertainDatabase(
            parse_facts(
                [
                    "Emp('ada' | 'db')",
                    "Emp('bob' | 'os')",
                    "Emp('bob' | 'net')",
                    "Dept('db' | 'Mons')",
                    "Dept('os' | 'Mons')",
                    "Dept('net' | 'Paris')",
                ],
                schema=schema,
            )
        )
        answers = certain_answers(db, q)
        names = {value.value for (value,) in answers}
        # 'ada' certainly works in a department with a city; so does 'bob'
        # (every repair keeps one of his two departments, each of which has a city).
        assert names == {"ada", "bob"}

    def test_certain_answers_drop_uncertain_tuples(self):
        q = parse_query("Emp(name | dept), Dept(dept | 'Mons')", free=["name"])
        schema = q.schema()
        db = UncertainDatabase(
            parse_facts(
                [
                    "Emp('ada' | 'db')",
                    "Emp('bob' | 'os')",
                    "Dept('db' | 'Mons')",
                    "Dept('os' | 'Mons')",
                    "Dept('os' | 'Paris')",
                ],
                schema=schema,
            )
        )
        names = {value.value for (value,) in certain_answers(db, q)}
        # bob's department might be located in Paris, so only ada is certain.
        assert names == {"ada"}


class TestIncrementalViewAPI:
    """The incremental-view surface exported at top level (quickstart §7)."""

    def _instance(self):
        q = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
        schema = q.schema()
        db = UncertainDatabase(
            parse_facts(
                [
                    "Emp('ada' | 'db')",
                    "Emp('bob' | 'os')",
                    "Emp('bob' | 'net')",
                    "Dept('db' | 'Mons')",
                    "Dept('os' | 'Mons')",
                    "Dept('net' | 'Paris')",
                ],
                schema=schema,
            )
        )
        return q, schema, db

    def test_top_level_exports(self):
        from repro import ChangeSet, MaterializedCertainView, SupportIndex, ViewManager

        assert ChangeSet and MaterializedCertainView and SupportIndex and ViewManager

    def test_view_manager_workflow(self):
        from repro import ViewManager

        q, schema, db = self._instance()
        inserts = []
        with ViewManager(db) as manager:
            view = manager.register(q)
            assert {v.value for (v,) in view.answers} == {"ada", "bob"}
            view.subscribe(on_insert=lambda t: inserts.append(t[0].value))
            # db.batch(): one consolidated maintenance step for the batch.
            with db.batch():
                db.add(schema["Emp"].fact("eve", "db"))
                db.add(schema["Dept"].fact("db", "Lille"))
            assert {v.value for (v,) in view.answers} == {"ada", "bob", "eve"}
            assert view.answers == frozenset(certain_answers(db, q))
        assert inserts == ["eve"]

    def test_bulk_mutations_are_batched(self):
        from repro import ViewManager

        q, schema, db = self._instance()
        with ViewManager(db) as manager:
            view = manager.register(q)
            baseline = view.stats.refreshes
            db.bulk_add(
                parse_facts(["Emp('zed' | 'os')", "Emp('kim' | 'db')"], schema=schema)
            )
            assert view.stats.refreshes == baseline + 1  # one batch, one refresh
            assert view.answers == frozenset(certain_answers(db, q))
