"""Tests for the parallel sharded certain-answers engine.

The contract under test is *exact equivalence*: for every execution mode
(serial inline, thread pool, process pool) and every workload band,
``ParallelCertaintySession.certain_answers`` returns the same set as the
sequential :class:`CertaintySession` — candidate sharding, snapshot
shipping, and chunk sizing must never change the answer.
"""

import random

import pytest

from repro import (
    ParallelCertaintySession,
    UncertainDatabase,
    certain_answers,
    certain_answers_parallel,
    is_certain,
    parse_facts,
    parse_query,
)
from repro.model.symbols import Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.families import path_query
from repro.workloads import synthetic_instance
from repro.query.families import cycle_query_ac

#: Worker counts stay small: CI boxes are 1-2 cores and the point is
#: correctness under sharding, not throughput.
MODES = ("serial", "thread", "process")


def open_variant(query, variable_name):
    """The query with one variable freed (same atoms, one free variable)."""
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


def band_workloads():
    """(query, allow_exponential, instance kwargs) per complexity band.

    The band refers to the classification of the *grounded* candidates the
    sharded loop decides: FO (path query), PTIME_NOT_FO (Figure 4),
    CONP_COMPLETE (Figure 2's q1 with the brute-force escape hatch), plus a
    self-join query whose plans re-classify per grounding.
    """
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(
            open_variant(path_query(3), "x1"),
            False,
            dict(domain_size=6, witnesses=12, noise_per_relation=8, conflict_rate=0.5),
            id="fo-band",
        ),
        pytest.param(
            open_variant(figure4_query(), "x"),
            False,
            dict(domain_size=4, witnesses=6, noise_per_relation=3, conflict_rate=0.4),
            id="ptime-not-fo-band",
        ),
        pytest.param(
            open_variant(figure2_q1(), "z"),
            True,
            dict(domain_size=3, witnesses=4, noise_per_relation=2, conflict_rate=0.4),
            id="conp-band-allow-exponential",
        ),
        pytest.param(
            # Non-collapsing groundings of a self-join are unsupported by the
            # polynomial solvers, so this band also exercises brute force.
            selfjoin,
            True,
            dict(domain_size=4, witnesses=6, noise_per_relation=4, conflict_rate=0.5),
            id="self-join-per-grounding",
        ),
    ]


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("query,allow,kwargs", band_workloads())
    @pytest.mark.parametrize("mode", MODES)
    def test_randomized_workloads(self, query, allow, kwargs, mode):
        for seed in range(3):
            db = synthetic_instance(query, seed=seed, **kwargs)
            expected = certain_answers(db, query, allow_exponential=allow)
            with ParallelCertaintySession(
                db,
                max_workers=2,
                mode=mode,
                min_parallel_candidates=1,
                allow_exponential=allow,
            ) as session:
                assert session.certain_answers(query) == expected

    @pytest.mark.parametrize("mode", MODES)
    def test_one_shot_wrapper(self, mode):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=11, domain_size=6, witnesses=12)
        assert certain_answers_parallel(
            db, query, mode=mode, max_workers=2
        ) == certain_answers(db, query)

    def test_chunk_size_extremes(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=4, domain_size=6, witnesses=12)
        expected = certain_answers(db, query)
        for chunk_size in (1, 2, 10_000):
            with ParallelCertaintySession(
                db,
                max_workers=2,
                mode="thread",
                chunk_size=chunk_size,
                min_parallel_candidates=1,
            ) as session:
                assert session.certain_answers(query) == expected

    def test_cycle_query_band_via_boolean_delegate(self, fig6_db):
        """Theorem 4 (PTIME_CYCLE_QUERY) runs through the session's solve."""
        query = cycle_query_ac(3)
        with ParallelCertaintySession(fig6_db, max_workers=2) as session:
            assert session.is_certain(query) == is_certain(fig6_db, query)
            assert session.solve(query).method == "theorem4-cycle-query"


class TestSnapshotCoherence:
    def test_mutation_between_calls_rebuilds_the_snapshot(self):
        """Answers after add/discard reflect the live database, not a stale pool."""
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(
            query, seed=7, domain_size=6, witnesses=12, conflict_rate=0.5
        )
        rng = random.Random(23)
        with ParallelCertaintySession(
            db, max_workers=2, mode="process", min_parallel_candidates=1
        ) as session:
            assert session.certain_answers(query) == certain_answers(db, query)
            for _ in range(3):
                # Interleave removals and inserts, then re-ask.
                victim = sorted(db.facts, key=str)[rng.randrange(len(db))]
                db.discard(victim)
                relation = query.atoms[0].relation
                db.add(relation.fact(f"n{rng.randrange(100)}", f"n{rng.randrange(100)}"))
                assert session.certain_answers(query) == certain_answers(db, query)

    def test_remove_block_between_calls(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(
            query, seed=9, domain_size=5, witnesses=10, conflict_rate=0.8
        )
        with ParallelCertaintySession(
            db, max_workers=2, mode="thread", min_parallel_candidates=1
        ) as session:
            session.certain_answers(query)
            block_key = max(db.block_keys(), key=lambda k: len(db.block(k)))
            db.remove_block(block_key)
            assert session.certain_answers(query) == certain_answers(db, query)


class TestLifecycleAndFallbacks:
    def test_broken_pool_recovers_on_the_next_call(self):
        """A worker crash must not permanently break the session."""
        import os as _os

        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=6, domain_size=6, witnesses=12)
        expected = certain_answers(db, query)
        with ParallelCertaintySession(
            db, max_workers=2, mode="process", min_parallel_candidates=1
        ) as session:
            assert session.certain_answers(query) == expected
            # Kill the workers out from under the executor: the next
            # dispatch hits BrokenProcessPool and must rebuild the pool.
            for _ in range(4):
                try:
                    session._executor.submit(_os._exit, 1).result()
                except Exception:
                    pass
            assert session.certain_answers(query) == expected
            assert session.certain_answers(query) == expected

    def test_small_inputs_skip_the_pool(self):
        query = parse_query("Emp(name | dept), Dept(dept | 'Mons')", free=["name"])
        schema = query.schema()
        db = UncertainDatabase(
            parse_facts(
                ["Emp('ada' | 'db')", "Dept('db' | 'Mons')"], schema=schema
            )
        )
        with ParallelCertaintySession(db, max_workers=4, mode="process") as session:
            answers = session.certain_answers(query)
            assert not session.pool_started  # 1 candidate < MIN_PARALLEL_CANDIDATES
        assert answers == certain_answers(db, query)

    def test_single_worker_runs_inline(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=2, domain_size=6, witnesses=12)
        with ParallelCertaintySession(
            db, max_workers=1, min_parallel_candidates=1
        ) as session:
            assert session.certain_answers(query) == certain_answers(db, query)
            assert not session.pool_started

    def test_boolean_query_rejected(self):
        query = path_query(2)
        db = synthetic_instance(query, seed=1)
        with ParallelCertaintySession(db) as session:
            with pytest.raises(ValueError):
                session.certain_answers(query)

    def test_closed_session_refuses_queries(self):
        query = open_variant(path_query(2), "x1")
        db = synthetic_instance(query, seed=1)
        session = ParallelCertaintySession(db)
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError):
            session.certain_answers(query)
        session.close()  # idempotent

    def test_invalid_parameters_rejected(self):
        db = UncertainDatabase()
        with pytest.raises(ValueError):
            ParallelCertaintySession(db, mode="fibers")
        with pytest.raises(ValueError):
            ParallelCertaintySession(db, max_workers=0)

    def test_context_manager_detaches_observer(self):
        query = open_variant(path_query(2), "x1")
        db = synthetic_instance(query, seed=5)
        with ParallelCertaintySession(db) as session:
            pass
        # Mutations after close must not touch the closed session's state.
        relation = query.atoms[0].relation
        db.add(relation.fact("post", "close"))
        assert session.closed
