"""Tests for repro.model.valuation."""

import pytest

from repro.model.atoms import Fact, RelationSchema
from repro.model.symbols import Constant, Variable
from repro.model.valuation import EMPTY_VALUATION, Valuation

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
R = RelationSchema("R", 3, 1)


class TestConstruction:
    def test_from_mapping_coerces_values(self):
        valuation = Valuation({X: "a", Y: 2})
        assert valuation[X] == Constant("a") and valuation[Y] == Constant(2)

    def test_rejects_non_variable_keys(self):
        with pytest.raises(TypeError):
            Valuation({"x": "a"})

    def test_from_pairs(self):
        valuation = Valuation.from_pairs([(X, "a"), (Y, "b")])
        assert len(valuation) == 2

    def test_empty_constant(self):
        assert len(EMPTY_VALUATION) == 0


class TestOperations:
    def test_extend_adds_binding(self):
        valuation = Valuation({X: "a"}).extend(Y, "b")
        assert valuation[Y] == Constant("b")

    def test_extend_conflict_raises(self):
        with pytest.raises(ValueError):
            Valuation({X: "a"}).extend(X, "b")

    def test_extend_same_value_ok(self):
        assert Valuation({X: "a"}).extend(X, "a")[X] == Constant("a")

    def test_merge_compatible(self):
        merged = Valuation({X: "a"}).merge(Valuation({Y: "b"}))
        assert merged is not None and merged[Y] == Constant("b")

    def test_merge_conflict_returns_none(self):
        assert Valuation({X: "a"}).merge(Valuation({X: "b"})) is None

    def test_restrict(self):
        valuation = Valuation({X: "a", Y: "b"}).restrict([X])
        assert X in valuation and Y not in valuation

    def test_override(self):
        valuation = Valuation({X: "a"}).override({X: "c", Y: "d"})
        assert valuation[X] == Constant("c") and valuation[Y] == Constant("d")

    def test_domain(self):
        assert Valuation({X: "a", Y: "b"}).domain() == {X, Y}


class TestApplication:
    def test_apply_term_identity_on_constants(self):
        assert Valuation({X: "a"}).apply_term(Constant(9)) == Constant(9)

    def test_apply_term_identity_on_unbound_variables(self):
        assert Valuation({X: "a"}).apply_term(Y) == Y

    def test_apply_atom_partial(self):
        atom = R.atom(X, Y, 1)
        image = Valuation({X: "a"}).apply_atom(atom)
        assert image.variables == {Y}

    def test_ground_full(self):
        fact = Valuation({X: "a", Y: "b"}).ground(R.atom(X, Y, 1))
        assert isinstance(fact, Fact)
        assert fact.values == ("a", "b", 1)

    def test_ground_missing_binding_raises(self):
        with pytest.raises(ValueError):
            Valuation({X: "a"}).ground(R.atom(X, Y, 1))


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Valuation({X: "a"}) == Valuation({X: "a"})
        assert Valuation({X: "a"}) != Valuation({X: "b"})
        assert len({Valuation({X: "a"}), Valuation({X: "a"})}) == 1

    def test_items_iteration(self):
        valuation = Valuation({X: "a", Y: "b"})
        assert dict(valuation.items()) == {X: Constant("a"), Y: Constant("b")}
