"""Tests for the Theorem 3 solver (weak terminal cycles)."""

import pytest

from repro.certainty import UnsupportedQueryError, certain_brute_force, certain_terminal_cycles
from repro.certainty.terminal_cycles import applies_to
from repro.model import UncertainDatabase
from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    parse_query,
)
from repro.workloads import synthetic_instance

from tests.helpers import random_instance


class TestApplicability:
    def test_applies_to_weak_terminal_queries(self):
        assert applies_to(figure4_query())
        assert applies_to(figure4_query(include_r0=False))
        assert applies_to(cycle_query_c(2))
        assert applies_to(fuxman_miller_cfree_example())

    def test_does_not_apply_to_strong_or_nonterminal(self):
        assert not applies_to(figure2_q1())
        assert not applies_to(cycle_query_ac(3))

    def test_solver_rejects_unsupported(self):
        with pytest.raises(UnsupportedQueryError):
            certain_terminal_cycles(UncertainDatabase(), figure2_q1())

    def test_does_not_apply_to_self_join(self):
        assert not applies_to(parse_query("R(x | y), R(y | x)"))


class TestAgainstOracle:
    @pytest.mark.parametrize(
        "query",
        [cycle_query_c(2), figure4_query(include_r0=False), figure4_query()],
        ids=["C(2)", "fig4-cycles-only", "fig4-with-R0"],
    )
    def test_random_agreement(self, query, rng):
        for seed in range(12):
            db = synthetic_instance(
                query, seed=seed, domain_size=3, witnesses=2, noise_per_relation=2, conflict_rate=0.5
            )
            assert certain_terminal_cycles(db, query) == certain_brute_force(db, query)

    def test_uniform_random_agreement_c2(self, rng):
        query = cycle_query_c(2)
        for _ in range(25):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=5)
            assert certain_terminal_cycles(db, query) == certain_brute_force(db, query)

    def test_two_disjoint_cycle_pairs(self, rng):
        """A query whose base case has two independent weak cycles."""
        query = parse_query("A(x, u | v), B(x, v | u), E(y, p | q), F(y, q | p)")
        assert applies_to(query)
        for _ in range(15):
            db = random_instance(query, rng, domain_size=2, facts_per_relation=3)
            assert certain_terminal_cycles(db, query) == certain_brute_force(db, query)

    def test_empty_database(self):
        assert not certain_terminal_cycles(UncertainDatabase(), figure4_query())

    def test_planted_witness_certain(self):
        query = figure4_query(include_r0=False)
        db = UncertainDatabase()
        values = {"x": "x0", "y": "y0", "z": "z0", "u1": "1", "u2": "2", "u3": "3", "u4": "4", "u5": "5", "u6": "6"}
        for atom in query.atoms:
            db.add(atom.relation.fact(*[values[t.name] for t in atom.terms]))
        assert certain_terminal_cycles(db, query)
        assert certain_brute_force(db, query)

    def test_partitioning_separates_vectors(self):
        """Facts with different shared-variable vectors are decided independently."""
        query = parse_query("A(x, u | v), B(x, v | u), E(x, p | q), F(x, q | p)")
        assert applies_to(query)
        schema = query.schema()
        db = UncertainDatabase(
            [
                # Partition x=c1: consistent witness for the A/B cycle and E/F cycle.
                schema["A"].fact("c1", "u1", "v1"),
                schema["B"].fact("c1", "v1", "u1"),
                schema["E"].fact("c1", "p1", "q1"),
                schema["F"].fact("c1", "q1", "p1"),
                # Partition x=c2: broken (no F partner), so it certifies nothing.
                schema["A"].fact("c2", "u2", "v2"),
                schema["B"].fact("c2", "v2", "u2"),
                schema["E"].fact("c2", "p2", "q2"),
            ]
        )
        assert certain_terminal_cycles(db, query) == certain_brute_force(db, query)
