"""Tests for the tractability classifier (repro.core)."""

import pytest

from repro.core import (
    ComplexityBand,
    band_counts,
    classify,
    classify_corpus,
    frontier_table,
    summarize_frontier,
)
from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
    parse_query,
    path_query,
    star_query,
)
from repro.workloads import figure1_query


class TestBandsOfPaperQueries:
    def test_figure1_query_is_fo(self):
        assert classify(figure1_query()).band is ComplexityBand.FO

    def test_fm_query_is_fo(self):
        assert classify(fuxman_miller_cfree_example()).band is ComplexityBand.FO

    def test_path_and_star_queries_are_fo(self):
        assert classify(path_query(4)).band is ComplexityBand.FO
        assert classify(star_query(3)).band is ComplexityBand.FO

    def test_q1_is_conp_complete(self):
        classification = classify(figure2_q1())
        assert classification.band is ComplexityBand.CONP_COMPLETE
        assert classification.strong_cycle_witness is not None

    def test_q0_is_conp_complete(self):
        assert classify(kolaitis_pema_q0()).band is ComplexityBand.CONP_COMPLETE

    def test_figure4_is_ptime_not_fo(self):
        assert classify(figure4_query()).band is ComplexityBand.PTIME_NOT_FO
        assert classify(figure4_query(include_r0=False)).band is ComplexityBand.PTIME_NOT_FO

    def test_c2_is_ptime_not_fo(self):
        assert classify(cycle_query_c(2)).band is ComplexityBand.PTIME_NOT_FO

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_ack_is_ptime_cycle_query(self, k):
        classification = classify(cycle_query_ac(k))
        assert classification.band is ComplexityBand.PTIME_CYCLE_QUERY
        assert classification.cycle_parameter == k

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_ck_is_ptime_cycle_query(self, k):
        classification = classify(cycle_query_c(k))
        assert classification.band is ComplexityBand.PTIME_CYCLE_QUERY
        assert classification.cycle_parameter == k

    def test_self_join_unsupported(self):
        assert classify(parse_query("R(x | y), R(y | z)")).band is ComplexityBand.UNSUPPORTED_SELF_JOIN

    def test_cyclic_non_ck_unsupported(self):
        q = parse_query("R(x | y, w), S(y | z, w), T(z | x, w)")
        assert classify(q).band is ComplexityBand.UNSUPPORTED_CYCLIC_QUERY

    def test_open_case_exists(self):
        """A nonterminal weak cycle outside the AC(k) family is the open case."""
        q = parse_query("R1(x | y), R2(y | x), S(x, y | z)")
        classification = classify(q)
        assert classification.band in (
            ComplexityBand.OPEN_CONJECTURED_P,
            ComplexityBand.PTIME_CYCLE_QUERY,
        )

    def test_non_boolean_query_classified_via_boolean_version(self):
        q = parse_query("R(x | y), S(y | z)", free=["x"])
        assert classify(q).band is ComplexityBand.FO


class TestClassificationObject:
    def test_band_properties(self):
        assert ComplexityBand.FO.is_tractable and ComplexityBand.FO.is_first_order
        assert ComplexityBand.PTIME_NOT_FO.is_tractable and not ComplexityBand.PTIME_NOT_FO.is_first_order
        assert ComplexityBand.CONP_COMPLETE.is_intractable
        assert not ComplexityBand.UNSUPPORTED_SELF_JOIN.is_supported

    def test_explain_mentions_band(self):
        explanation = classify(figure2_q1()).explain()
        assert "CONP_COMPLETE" in explanation

    def test_reasons_populated(self):
        assert classify(figure4_query()).reasons

    def test_fo_classification_exposes_peeling_order(self):
        classification = classify(fuxman_miller_cfree_example())
        assert any("peeling order" in reason for reason in classification.reasons)


class TestFrontierHelpers:
    def test_classify_corpus_and_counts(self):
        queries = [figure2_q1(), figure4_query(), cycle_query_ac(3), fuxman_miller_cfree_example()]
        classifications = classify_corpus(queries)
        counts = band_counts(classifications)
        assert counts[ComplexityBand.CONP_COMPLETE] == 1
        assert counts[ComplexityBand.PTIME_NOT_FO] == 1
        assert counts[ComplexityBand.PTIME_CYCLE_QUERY] == 1
        assert counts[ComplexityBand.FO] == 1

    def test_frontier_table_renders(self):
        classifications = classify_corpus([figure2_q1(), fuxman_miller_cfree_example()])
        table = frontier_table(classifications, labels=["q1", "fm"])
        assert "q1" in table and "CONP_COMPLETE" in table

    def test_frontier_table_label_mismatch(self):
        with pytest.raises(ValueError):
            frontier_table(classify_corpus([figure2_q1()]), labels=["a", "b"])

    def test_summarize_frontier(self):
        summary = summarize_frontier(classify_corpus([figure2_q1(), figure4_query()]))
        assert "classified queries: 2" in summary
