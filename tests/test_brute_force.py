"""Tests for the brute-force oracle solver."""


from repro.certainty import (
    brute_force_with_certificate,
    certain_brute_force,
    certain_by_enumeration,
)
from repro.model import RelationSchema, UncertainDatabase
from repro.model.repairs import is_repair
from repro.query import ConjunctiveQuery, parse_query, satisfies
from repro.workloads import figure1_database, figure1_query

from tests.helpers import random_instance

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 2, 1)


class TestBruteForce:
    def test_figure1_not_certain(self):
        assert not certain_brute_force(figure1_database(), figure1_query())

    def test_empty_query_always_certain(self):
        assert certain_brute_force(UncertainDatabase(), ConjunctiveQuery([]))
        assert certain_brute_force(UncertainDatabase([R.fact("a", 1)]), ConjunctiveQuery([]))

    def test_empty_database_not_certain_for_nonempty_query(self):
        q = parse_query("R(x | y)")
        assert not certain_brute_force(UncertainDatabase(), q)

    def test_consistent_database_certain_iff_satisfied(self):
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b"), schema["S"].fact("b", "a")])
        assert certain_brute_force(db, q)
        db_miss = UncertainDatabase([schema["R"].fact("a", "b"), schema["S"].fact("b", "z")])
        assert not certain_brute_force(db_miss, q)

    def test_conflicting_witness_blocks_not_certain(self):
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [
                schema["R"].fact("a", "b"),
                schema["R"].fact("a", "zzz"),
                schema["S"].fact("b", "a"),
            ]
        )
        assert not certain_brute_force(db, q)

    def test_two_disjoint_witnesses_cover_all_repairs(self):
        """Each repair keeps one of the R-facts, but both S partners are present."""
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [
                schema["R"].fact("a", "b1"),
                schema["R"].fact("a", "b2"),
                schema["S"].fact("b1", "a"),
                schema["S"].fact("b2", "a"),
            ]
        )
        assert certain_brute_force(db, q)

    def test_certificate_is_a_falsifying_repair(self):
        db = figure1_database()
        q = figure1_query()
        result = brute_force_with_certificate(db, q)
        assert not result.certain
        assert result.falsifying_repair is not None
        assert is_repair(db, result.falsifying_repair)
        assert not satisfies(result.falsifying_repair, q)

    def test_certificate_absent_when_certain(self):
        q = parse_query("R(x | y)")
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b")])
        result = brute_force_with_certificate(db, q)
        assert result.certain and result.falsifying_repair is None

    def test_agrees_with_plain_enumeration(self, rng):
        q = parse_query("A(x | y), B(y | x)")
        for _ in range(20):
            db = random_instance(q, rng, domain_size=3, facts_per_relation=4)
            assert certain_brute_force(db, q) == certain_by_enumeration(db, q)

    def test_agrees_with_plain_enumeration_three_atoms(self, rng):
        q = parse_query("A(x | y), B(y | z), D(z | x, w)")
        for _ in range(10):
            db = random_instance(q, rng, domain_size=2, facts_per_relation=3)
            assert certain_brute_force(db, q) == certain_by_enumeration(db, q)

    def test_bool_protocol(self):
        q = parse_query("R(x | y)")
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b")])
        assert bool(brute_force_with_certificate(db, q))
