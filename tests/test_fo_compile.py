"""Differential tests for the compiled set-at-a-time formula evaluator.

The naive :class:`FormulaEvaluator` (``compiled=False``) is the executable
definition of active-domain semantics; the compiled plans of
:mod:`repro.fo.compile` must agree with it on *every* formula and database.
The tests below fuzz that agreement over randomly generated formulas and
workload databases, check the guardedness analysis on the rewritings of
Theorem 1, and cross-check the compiled-rewriting certainty solver against
the peeling solver and the brute-force oracle.
"""

import random

import pytest

from repro.certainty import (
    UnsupportedQueryError,
    certain_brute_force,
    certain_fo,
    certain_fo_rewriting,
)
from repro.engine import CertaintySession, compile_plan
from repro.fo import (
    And,
    AtomFormula,
    Bottom,
    CompiledFormula,
    Equals,
    EvalContext,
    Exists,
    Forall,
    FormulaEvaluator,
    Implies,
    Not,
    Or,
    Top,
    certain_rewriting,
    certain_rewriting_cached,
    compile_formula,
    evaluate_sentence,
    push_negation,
)
from repro.model import UncertainDatabase
from repro.model.atoms import RelationSchema
from repro.model.symbols import Constant, Variable
from repro.model.valuation import Valuation
from repro.query import (
    ConjunctiveQuery,
    cycle_query_c,
    figure2_q1,
    fuxman_miller_cfree_example,
    parse_query,
    path_query,
)
from repro.query.evaluation import FactIndex
from repro.workloads import figure1_database, figure1_query, uniform_random_instance

from tests.helpers import random_instance

FO_QUERIES = [
    fuxman_miller_cfree_example(),
    path_query(3),
    figure1_query(),
    parse_query("A(x | y), B(x, y | w), D(w, x | v)"),
    parse_query("R(x | y, 'a'), S(y | z), T(y, z | u)"),
    parse_query("A(x | y), B(y | y, w)"),
    parse_query("Lonely(x | y)"),
]

SCHEMAS = [
    RelationSchema("R", 2, 1),
    RelationSchema("S", 2, 1),
    RelationSchema("T", 3, 2),
    RelationSchema("U", 1, 1),
]

VARIABLES = [Variable(name) for name in ("x", "y", "z", "w")]


def random_database(rng, domain_size=3, facts_per_relation=4):
    """A random database over the fuzzing schema."""
    domain = [f"c{i}" for i in range(domain_size)]
    db = UncertainDatabase()
    for relation in SCHEMAS:
        for _ in range(rng.randrange(facts_per_relation + 1)):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db


def random_formula(rng, scope, depth):
    """A random formula whose free variables are drawn from *scope*."""
    domain_constants = [Constant(f"c{i}") for i in range(3)]

    def random_term():
        choices = list(scope) + domain_constants
        return rng.choice(choices)

    def random_atom():
        relation = rng.choice(SCHEMAS)
        return AtomFormula(relation.atom(*[random_term() for _ in range(relation.arity)]))

    if depth <= 0:
        roll = rng.random()
        if roll < 0.70:
            return random_atom()
        if roll < 0.85:
            return Equals(random_term(), random_term())
        return Top() if rng.random() < 0.5 else Bottom()
    roll = rng.random()
    if roll < 0.20:
        return random_atom()
    if roll < 0.35:
        operands = [random_formula(rng, scope, depth - 1) for _ in range(rng.randrange(1, 4))]
        return And(operands)
    if roll < 0.50:
        operands = [random_formula(rng, scope, depth - 1) for _ in range(rng.randrange(1, 4))]
        return Or(operands)
    if roll < 0.60:
        return Not(random_formula(rng, scope, depth - 1))
    if roll < 0.70:
        return Implies(
            random_formula(rng, scope, depth - 1), random_formula(rng, scope, depth - 1)
        )
    quantified = rng.sample(VARIABLES, rng.randrange(1, 3))
    inner = random_formula(rng, list(set(scope) | set(quantified)), depth - 1)
    if roll < 0.85:
        return Exists(quantified, inner)
    return Forall(quantified, inner)


class TestDifferentialFuzz:
    """compiled evaluation ≡ naive active-domain evaluation, always."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_sentences(self, seed):
        rng = random.Random(seed)
        db = random_database(rng)
        for _ in range(6):
            formula = random_formula(rng, [], depth=3)
            naive = FormulaEvaluator(db, compiled=False).evaluate(formula)
            compiled = FormulaEvaluator(db, compiled=True).evaluate(formula)
            assert compiled == naive, f"disagreement on {formula!r} over {sorted(map(str, db.facts))}"

    @pytest.mark.parametrize("seed", range(20))
    def test_random_open_formulas_under_valuations(self, seed):
        rng = random.Random(1000 + seed)
        db = random_database(rng)
        domain = sorted(db.active_domain(), key=str) or [Constant("c0")]
        scope = VARIABLES[:2]
        for _ in range(4):
            formula = random_formula(rng, scope, depth=2)
            valuation = Valuation({v: rng.choice(domain) for v in scope})
            naive = FormulaEvaluator(db, compiled=False).evaluate(formula, valuation)
            compiled = FormulaEvaluator(db, compiled=True).evaluate(formula, valuation)
            assert compiled == naive, f"disagreement on {formula!r} under {valuation}"

    @pytest.mark.parametrize("seed", range(10))
    def test_explicit_restricted_domain(self, seed):
        """A supplied quantification domain smaller than the active domain."""
        rng = random.Random(2000 + seed)
        db = random_database(rng, domain_size=4)
        domain = [Constant("c0"), Constant("c1")]
        for _ in range(4):
            formula = random_formula(rng, [], depth=2)
            naive = FormulaEvaluator(db, domain=domain, compiled=False).evaluate(formula)
            compiled = FormulaEvaluator(db, domain=domain, compiled=True).evaluate(formula)
            assert compiled == naive, f"disagreement on {formula!r} with restricted domain"

    def test_empty_database_and_domain(self):
        db = UncertainDatabase()
        x = Variable("x")
        exists = Exists([x], Top())
        forall = Forall([x], Bottom())
        for formula, expected in ((exists, False), (forall, True)):
            assert FormulaEvaluator(db, compiled=False).evaluate(formula) is expected
            assert FormulaEvaluator(db, compiled=True).evaluate(formula) is expected

    @pytest.mark.parametrize("query", FO_QUERIES, ids=lambda q: str(q)[:40])
    def test_rewriting_formulas(self, query, rng):
        """Both strategies agree on the actual rewritings of Theorem 1."""
        formula = certain_rewriting(query)
        for _ in range(6):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            naive = evaluate_sentence(db, formula, compiled=False)
            assert evaluate_sentence(db, formula, compiled=True) == naive


class TestGuardedness:
    """Range analysis: rewritings never enumerate the active domain."""

    @pytest.mark.parametrize("query", FO_QUERIES, ids=lambda q: str(q)[:40])
    def test_rewriting_plans_are_guarded(self, query, rng):
        plan = compile_formula(certain_rewriting_cached(query))
        db = random_instance(query, rng, domain_size=3, facts_per_relation=5)
        ctx = EvalContext.for_database(db)
        plan.evaluate(context=ctx)
        assert ctx.domain_expansions == 0

    def test_unguarded_fallback_counts_expansions(self):
        x, y = Variable("x"), Variable("y")
        formula = Exists([x, y], Equals(x, y))
        db = UncertainDatabase([SCHEMAS[0].fact("a", "b")])
        ctx = EvalContext.for_database(db)
        assert compile_formula(formula).evaluate(context=ctx)
        assert ctx.domain_expansions > 0

    def test_atom_probes_use_block_index(self):
        query = fuxman_miller_cfree_example()
        plan = compile_formula(certain_rewriting_cached(query))
        schema = query.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "c")]
        )
        ctx = EvalContext.for_database(db)
        assert plan.evaluate(context=ctx)
        assert ctx.block_lookups > 0

    def test_push_negation_flips_evaluation(self):
        random_rng = random.Random(7)
        db = random_database(random_rng)
        evaluator = FormulaEvaluator(db, compiled=False)
        for _ in range(20):
            formula = random_formula(random_rng, [], depth=2)
            assert evaluator.evaluate(push_negation(formula)) != evaluator.evaluate(formula)


class TestMemoisation:
    def test_compile_formula_is_memoised_per_object(self):
        formula = certain_rewriting(fuxman_miller_cfree_example())
        assert compile_formula(formula) is compile_formula(formula)

    def test_cached_rewriting_shares_formula_and_plan(self):
        q1 = fuxman_miller_cfree_example()
        q2 = fuxman_miller_cfree_example()
        assert certain_rewriting_cached(q1) is certain_rewriting_cached(q2)
        assert compile_formula(certain_rewriting_cached(q1)) is compile_formula(
            certain_rewriting_cached(q2)
        )

    def test_shared_index_is_used(self):
        db = UncertainDatabase([SCHEMAS[0].fact("a", "b")])
        index = FactIndex(db.facts)
        evaluator = FormulaEvaluator(db, index=index)
        assert evaluator.index is index
        atom = AtomFormula(SCHEMAS[0].atom(Constant("a"), Constant("b")))
        assert evaluator.evaluate(atom)
        # The naive path reads the index too (not db membership).
        assert FormulaEvaluator(db, index=index, compiled=False).evaluate(atom)


class TestCompiledRewritingSolver:
    @pytest.mark.parametrize("query", FO_QUERIES, ids=lambda q: str(q)[:40])
    def test_agrees_with_peeling_and_oracle(self, query, rng):
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            expected = certain_brute_force(db, query)
            assert certain_fo(db, query) == expected
            assert certain_fo_rewriting(db, query) == expected

    def test_rejects_cyclic_attack_graph(self):
        with pytest.raises(UnsupportedQueryError):
            certain_fo_rewriting(UncertainDatabase(), cycle_query_c(2))
        with pytest.raises(UnsupportedQueryError):
            certain_fo_rewriting(UncertainDatabase(), figure2_q1())

    def test_figure1(self):
        assert certain_fo_rewriting(figure1_database(), figure1_query()) is False

    def test_empty_query_is_certain(self):
        assert certain_fo_rewriting(UncertainDatabase(), ConjunctiveQuery([]))

    @pytest.mark.parametrize("query", FO_QUERIES[:4], ids=lambda q: str(q)[:40])
    def test_workload_instances(self, query):
        for seed in range(6):
            db = uniform_random_instance(query, seed=seed, domain_size=3, facts_per_relation=5)
            assert certain_fo_rewriting(db, query) == certain_fo(db, query)


class TestEngineRouting:
    """FO-band plans execute through the compiled rewriting."""

    def test_plan_carries_compiled_rewriting(self):
        plan = compile_plan(fuxman_miller_cfree_example())
        assert plan.method == "fo-rewriting"
        assert isinstance(plan.fo_rewriting, CompiledFormula)

    def test_non_fo_plan_has_no_rewriting(self):
        plan = compile_plan(figure2_q1())
        assert plan.fo_rewriting is None

    @pytest.mark.parametrize("query", FO_QUERIES[:4], ids=lambda q: str(q)[:40])
    def test_session_matches_one_shot(self, query, rng):
        for _ in range(4):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            with CertaintySession(db) as session:
                outcome = session.solve(query)
                assert outcome.method == "fo-rewriting"
                assert outcome.certain == certain_fo(db, query)

    def test_open_fo_plan_compiles_once_for_all_candidates(self):
        query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
        plan = compile_plan(query)
        assert plan.method == "fo-rewriting"
        assert isinstance(plan.fo_rewriting, CompiledFormula)
        assert plan.fo_candidate_vars is not None
        assert len(plan.fo_candidate_vars) == 1
        # The open plan's free variables are exactly the candidate variables.
        assert plan.fo_rewriting.free_variables <= frozenset(plan.fo_candidate_vars)

    def test_session_certain_answers_on_fo_query(self, rng):
        from repro import certain_answers
        from repro.query.substitution import ground_free_variables

        query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
        for _ in range(4):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            with CertaintySession(db) as session:
                batched = session.certain_answers(query)
            assert batched == certain_answers(db, query)
            # Every claimed answer's grounding is certain per the oracle,
            # exercising the shared open-plan + valuation path end to end.
            for candidate in batched:
                grounded = ground_free_variables(query, [c.value for c in candidate])
                assert certain_brute_force(db, grounded)

    def test_placeholder_named_constant_falls_back_safely(self):
        """A user constant in the placeholder namespace must not be captured
        by the open-plan back-substitution (regression test)."""
        from repro import certain_answers
        from repro.query.substitution import ground_free_variables

        query = parse_query(
            "Emp(name | dept), Dept(dept | '__plan_placeholder_0__')", free=["name"]
        )
        plan = compile_plan(query)
        assert plan.fo_candidate_vars is None  # open-plan path bailed out
        schema = query.schema()
        db = UncertainDatabase(
            [
                schema["Emp"].fact("alice", "d1"),
                schema["Dept"].fact("d1", "__plan_placeholder_0__"),
            ]
        )
        grounded = ground_free_variables(query, ["alice"])
        assert certain_brute_force(db, grounded)
        with CertaintySession(db) as session:
            assert len(session.certain_answers(query)) == 1
        assert len(certain_answers(db, query)) == 1

    def test_session_tracks_mutation(self):
        query = fuxman_miller_cfree_example()
        schema = query.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b"), schema["S"].fact("b", "c")])
        with CertaintySession(db) as session:
            assert session.is_certain(query)
            db.add(schema["R"].fact("a", "z"))  # conflicting block breaks certainty
            assert not session.is_certain(query)
            db.add(schema["S"].fact("z", "c"))  # both choices now witness the query
            assert session.is_certain(query)
