"""The multi-tenant serving layer: tenants, admission control, stats.

Covers the three admission outcomes (inline / queued / rejected), ticket
timeout and cancellation, per-tenant intern-table isolation (the regression
test for the explicit ``table=`` sweep), mutation batches through the
service, stats aggregation, and a concurrent-driver smoke test comparing
every answer against an out-of-band sequential replay.
"""

import threading

import pytest

from repro.certainty.solver import certain_answers
from repro.core.complexity import ComplexityBand
from repro.model.database import UncertainDatabase
from repro.query import parse_fact, parse_facts, parse_query
from repro.service import (
    INLINE,
    QUEUED,
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
    CancelledError,
    CertaintyService,
)
from repro.service.admission import FutureTimeoutError
from repro.workloads import multi_tenant_workload, replay_trace


def fo_query():
    """R(x|y), S(y|z) with free x — FO band, served inline."""
    return parse_query("R(x | y), S(y | z)", free=["x"])


def queued_query():
    """The Boolean 2-cycle R(x|y), S(y|x) — PTIME but not FO, queued."""
    return parse_query("R(x | y), S(y | x)")


def tenant_facts(prefix):
    return parse_facts(
        [
            f"R('{prefix}k1' | '{prefix}v1')",
            f"R('{prefix}k1' | '{prefix}v2')",
            f"S('{prefix}v1' | '{prefix}w')",
            f"S('{prefix}v2' | '{prefix}w')",
        ]
    )


# -- admission outcomes --------------------------------------------------------------


def test_fo_band_served_inline():
    with CertaintyService() as svc:
        svc.create_tenant("a", facts=tenant_facts("a"))
        ticket = svc.submit("a", fo_query())
        assert ticket.outcome == INLINE
        assert ticket.done
        answers = ticket.result()
        assert {c.value for (c,) in answers} == {"ak1"}
        stats = svc.tenant("a").admission_stats
        assert stats.inline_served == 1
        assert stats.queued == 0


def test_harder_band_queued():
    with CertaintyService() as svc:
        tenant = svc.create_tenant("a", facts=tenant_facts("a"))
        assert tenant.band(queued_query()) is ComplexityBand.PTIME_NOT_FO
        ticket = svc.submit("a", queued_query())
        assert ticket.outcome == QUEUED
        verdict = ticket.result(timeout=10)
        assert verdict == frozenset()  # the 2-cycle is not certain here
        stats = tenant.admission_stats
        assert stats.queued == 1
        assert stats.completed == 1
        assert stats.inline_served == 0


def test_boolean_certain_encodes_as_unit_set():
    with CertaintyService() as svc:
        svc.create_tenant("a", facts=parse_facts(["R('k' | 'v')", "S('v' | 'k')"]))
        assert svc.certain_answers("a", queued_query(), timeout=10) == {()}
        assert svc.is_certain("a", queued_query(), timeout=10)


def test_queue_depth_rejection():
    controller = AdmissionController(max_workers=1, queue_depth=1)
    stats = AdmissionStats()
    release = threading.Event()
    query = queued_query()
    band = ComplexityBand.PTIME_NOT_FO

    def blocked():
        release.wait(10)
        return frozenset()

    first = controller.submit("t", query, band, blocked, stats)
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.submit("t", query, band, blocked, stats)
    assert excinfo.value.tenant_id == "t"
    assert excinfo.value.cap == 1
    assert stats.rejected == 1
    release.set()
    assert first.result(timeout=10) == frozenset()
    assert controller.queue_depth("t") == 0
    controller.close()


def test_rejection_is_per_tenant():
    controller = AdmissionController(max_workers=1, queue_depth=1)
    release = threading.Event()
    query = queued_query()
    band = ComplexityBand.PTIME_NOT_FO
    stats_a, stats_b = AdmissionStats(), AdmissionStats()

    def blocked():
        release.wait(10)
        return frozenset()

    a = controller.submit("a", query, band, blocked, stats_a)
    # Tenant b's queue is empty: the cap of tenant a must not reject b.
    b = controller.submit("b", query, band, blocked, stats_b)
    release.set()
    assert a.result(timeout=10) == b.result(timeout=10) == frozenset()
    assert stats_a.rejected == stats_b.rejected == 0
    controller.close()


def test_ticket_timeout_then_completion():
    controller = AdmissionController(max_workers=1, queue_depth=2)
    stats = AdmissionStats()
    release = threading.Event()

    def blocked():
        release.wait(10)
        return frozenset({("late",)})

    ticket = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    with pytest.raises(FutureTimeoutError):
        ticket.result(timeout=0.01)
    assert stats.timeouts == 1
    release.set()
    assert ticket.result(timeout=10) == frozenset({("late",)})
    assert stats.completed == 1
    controller.close()


def test_cancel_releases_queue_slot():
    controller = AdmissionController(max_workers=1, queue_depth=1)
    stats = AdmissionStats()
    release = threading.Event()

    def blocked():
        release.wait(10)
        return frozenset()

    running = controller.submit(
        "hog", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    # The single worker is busy with "hog"; this one sits in the pool queue
    # and can still be cancelled before it starts.
    waiting = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    assert waiting.cancel()
    assert stats.cancelled == 1
    assert controller.queue_depth("t") == 0
    with pytest.raises(CancelledError):
        waiting.result(timeout=1)
    release.set()
    assert running.result(timeout=10) == frozenset()
    controller.close()


def test_inline_ticket_cannot_cancel():
    with CertaintyService() as svc:
        svc.create_tenant("a", facts=tenant_facts("a"))
        ticket = svc.submit("a", fo_query())
        assert not ticket.cancel()


def test_abandoning_a_running_request_releases_the_slot():
    # Regression: cancelling a ticket whose worker thread already started
    # used to leave the queue slot held until the thread finished — a
    # caller that gave up could pin the tenant at its depth cap.
    controller = AdmissionController(max_workers=1, queue_depth=1)
    stats = AdmissionStats()
    started = threading.Event()
    release = threading.Event()

    def blocked():
        started.set()
        release.wait(10)
        return frozenset()

    running = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    assert started.wait(10)
    # The request is running: cancel() cannot stop it, but must abandon it.
    assert not running.cancel()
    assert running.abandoned
    assert stats.abandoned == 1
    assert controller.queue_depth("t") == 0
    # The freed slot admits new work immediately, at depth cap 1.
    follow_up = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO,
        lambda: frozenset({("next",)}), stats,
    )
    release.set()
    assert follow_up.result(timeout=10) == frozenset({("next",)})
    # The orphaned thread finishing must not double-release the slot.
    assert running.result(timeout=10) == frozenset()
    assert controller.queue_depth("t") == 0
    # A second cancel() is a no-op: no double abandon counting.
    running.cancel()
    assert stats.abandoned == 1
    controller.close()


def test_abandoned_slot_never_double_releases_under_new_load():
    controller = AdmissionController(max_workers=2, queue_depth=2)
    stats = AdmissionStats()
    release = threading.Event()

    def blocked():
        release.wait(10)
        return frozenset()

    first = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    second = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO, blocked, stats
    )
    first.cancel()
    second.cancel()
    assert controller.queue_depth("t") == 0
    release.set()
    first.result(timeout=10)
    second.result(timeout=10)
    # Depth must settle at zero, not underflow past it via double releases.
    assert controller.queue_depth("t") == 0
    third = controller.submit(
        "t", queued_query(), ComplexityBand.PTIME_NOT_FO,
        lambda: frozenset(), stats,
    )
    assert third.result(timeout=10) == frozenset()
    controller.close()


# -- intern isolation (regression for the explicit table sweep) ----------------------


def test_two_tenants_never_share_intern_ids():
    with CertaintyService() as svc:
        a = svc.create_tenant("a", facts=tenant_facts("a"))
        b = svc.create_tenant("b", facts=tenant_facts("b"))
        # Warm both hot paths so the columnar stores intern everything.
        svc.certain_answers("a", fo_query())
        svc.certain_answers("b", fo_query())
        values_a = set(a.intern_table.snapshot())
        values_b = set(b.intern_table.snapshot())
        assert values_a and values_b
        assert not values_a & values_b
        # Same numeric ids exist in both tables but decode to different
        # constants — the id spaces are private, not merely disjoint ranges.
        assert len(a.intern_table) > 0 and len(b.intern_table) > 0
        shared_ids = range(min(len(a.intern_table), len(b.intern_table)))
        assert all(
            a.intern_table.constant(i) != b.intern_table.constant(i)
            for i in shared_ids
        )


def test_session_store_uses_private_table():
    with CertaintyService() as svc:
        tenant = svc.create_tenant("a", facts=tenant_facts("a"))
        store = tenant.session.store
        assert store is not None
        assert store.table is tenant.intern_table


# -- mutations, views, lifecycle -----------------------------------------------------


def test_mutation_batch_through_service():
    with CertaintyService() as svc:
        svc.create_tenant("a", facts=tenant_facts("a"))
        before = svc.certain_answers("a", fo_query())
        svc.apply(
            "a",
            [
                ("add", parse_fact("R('ak2' | 'av9')")),
                ("add", parse_fact("S('av9' | 'aw')")),
            ],
        )
        after = svc.certain_answers("a", fo_query())
        assert {c.value for (c,) in before} == {"ak1"}
        assert {c.value for (c,) in after} == {"ak1", "ak2"}


def test_view_reads_fresh_under_default_policy():
    with CertaintyService() as svc:
        tenant = svc.create_tenant("a", facts=tenant_facts("a"))
        view = tenant.register_view(fo_query())
        svc.apply(
            "a",
            [
                ("add", parse_fact("R('ak2' | 'av9')")),
                ("add", parse_fact("S('av9' | 'aw')")),
            ],
        )
        # Default policy: maintenance deferred on write, flushed on read.
        assert {c.value for (c,) in view.answers} == {"ak1", "ak2"}
        assert tenant.views.pending_mutations == 0


def test_drop_tenant_closes_state():
    svc = CertaintyService()
    tenant = svc.create_tenant("a", facts=tenant_facts("a"))
    svc.drop_tenant("a")
    assert tenant.closed
    with pytest.raises(KeyError):
        svc.tenant("a")
    with pytest.raises(RuntimeError):
        tenant.execute(fo_query())
    svc.close()
    assert svc.closed
    with pytest.raises(RuntimeError):
        svc.create_tenant("b")


def test_duplicate_tenant_rejected():
    with CertaintyService() as svc:
        svc.create_tenant("a")
        with pytest.raises(ValueError):
            svc.create_tenant("a")


# -- stats ---------------------------------------------------------------------------


def test_stats_aggregate_memory_and_admission():
    with CertaintyService() as svc:
        svc.create_tenant("a", facts=tenant_facts("a"))
        svc.create_tenant("b", facts=tenant_facts("b"))
        svc.certain_answers("a", fo_query())
        svc.certain_answers("a", queued_query(), timeout=10)
        stats = svc.stats()
        assert set(stats["tenants"]) == {"a", "b"}
        totals = stats["totals"]
        assert totals["tenants"] == 2
        assert totals["facts"] == 8
        assert totals["inline_served"] == 1
        assert totals["queued"] == totals["completed"] == 1
        per_a = stats["tenants"]["a"]
        assert per_a["intern_memory"]["constants"] == len(
            svc.tenant("a").intern_table
        )
        assert per_a["intern_memory"]["total_bytes"] > 0
        assert totals["intern_bytes"] >= per_a["intern_memory"]["total_bytes"]
        assert per_a["queue_depth"] == 0
        assert "staleness" in per_a and "admission" in per_a


# -- concurrency smoke ---------------------------------------------------------------


def test_concurrent_tenants_match_sequential_replay():
    workload = multi_tenant_workload(num_tenants=4, steps=16, seed=11)
    failures = []
    with CertaintyService(max_workers=2, queue_depth=16) as svc:
        for trace in workload.traces:
            svc.create_tenant(trace.tenant_id, facts=trace.facts)

        def drive(trace):
            expected = dict(replay_trace(trace))
            for index, (kind, payload) in enumerate(trace.steps):
                if kind == "write":
                    svc.apply(trace.tenant_id, payload)
                    continue
                got = svc.certain_answers(trace.tenant_id, payload, timeout=30)
                if got != expected[index]:
                    failures.append((trace.tenant_id, index))

        threads = [
            threading.Thread(target=drive, args=(trace,))
            for trace in workload.traces
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        # Cross-tenant isolation held up under concurrency too.
        snapshots = [
            set(svc.tenant(trace.tenant_id).intern_table.snapshot())
            for trace in workload.traces
        ]
        for i, left in enumerate(snapshots):
            for right in snapshots[i + 1 :]:
                assert not left & right


def test_replay_matches_cold_recompute():
    (trace,) = multi_tenant_workload(num_tenants=1, steps=12, seed=3).traces
    replayed = dict(replay_trace(trace))
    # Re-derive the final database state and cross-check the last read.
    db = UncertainDatabase(trace.facts)
    last_read = None
    for index, (kind, payload) in enumerate(trace.steps):
        if kind == "write":
            for op_kind, fact in payload:
                (db.add if op_kind == "add" else db.discard)(fact)
        elif index in replayed:
            last_read = (index, payload)
    if last_read is not None:
        index, query = last_read
        # Not comparable mid-trace; recompute only for reads at the end
        # (no writes after them).
        trailing = all(
            kind != "write" for kind, _ in trace.steps[index + 1 :]
        )
        if trailing:
            if query.is_boolean:
                expected = replayed[index] == frozenset({()})
                from repro.certainty.solver import is_certain

                assert is_certain(db, query, allow_exponential=True) == expected
            else:
                assert (
                    frozenset(certain_answers(db, query, allow_exponential=True))
                    == replayed[index]
                )
