"""Bounded-staleness view maintenance: deterministic and randomized checks.

The contract under test (``StalenessPolicy``):

* a read after the refresh deadline expires, after the pending-mutation
  budget is exceeded, or after an explicit ``flush()`` is **identical to a
  cold recompute** of the certain answers;
* a read served stale is **bounded**: at most ``max_stale_mutations`` net
  mutations behind (and within the deadline, when one is configured);
* eager managers (no policy) never defer — their behaviour is unchanged.
"""

import random

import pytest

from repro.certainty.solver import certain_answers
from repro.incremental import StalenessPolicy, ViewManager
from repro.model.database import UncertainDatabase
from repro.query import parse_fact, parse_facts, parse_query
from repro.workloads import multi_tenant_workload


class FakeClock:
    """A manually advanced monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def open_query():
    return parse_query("R(x | y), S(y | z)", free=["x"])


def base_facts():
    return parse_facts(
        [
            "R('k1' | 'v1')",
            "S('v1' | 'w')",
            "R('k2' | 'v2')",
            "S('v2' | 'w')",
        ]
    )


def cold(db, query):
    return frozenset(certain_answers(db, query, allow_exponential=True))


def witness(n):
    """Two facts that add certain answer ``kn``."""
    return [
        ("add", parse_fact(f"R('k{n}' | 'v{n}')")),
        ("add", parse_fact(f"S('v{n}' | 'w')")),
    ]


def apply_ops(db, ops):
    with db.batch():
        for kind, fact in ops:
            (db.add if kind == "add" else db.discard)(fact)


def test_policy_validation():
    with pytest.raises(ValueError):
        StalenessPolicy(max_stale_mutations=-1)
    with pytest.raises(ValueError):
        StalenessPolicy(refresh_deadline=-0.5)


def test_reads_within_budget_are_stale_but_bounded():
    db = UncertainDatabase(base_facts())
    query = open_query()
    with ViewManager(db, staleness=StalenessPolicy(max_stale_mutations=2)) as mgr:
        view = mgr.register(query)
        before = view.answers
        apply_ops(db, witness(3))  # 2 net mutations: within the budget
        assert mgr.pending_mutations == 2
        stale = view.answers
        assert stale == before  # served stale: the new witness is invisible
        assert stale != cold(db, query)
        assert mgr.staleness_stats.stale_reads == 1
        assert mgr.pending_mutations <= mgr.staleness.max_stale_mutations


def test_read_past_budget_flushes_to_cold_recompute():
    db = UncertainDatabase(base_facts())
    query = open_query()
    with ViewManager(db, staleness=StalenessPolicy(max_stale_mutations=2)) as mgr:
        view = mgr.register(query)
        apply_ops(db, witness(3))
        apply_ops(db, witness(4))  # 4 pending > budget of 2
        assert mgr.pending_mutations == 4
        assert view.answers == cold(db, query)
        assert mgr.pending_mutations == 0
        assert mgr.staleness_stats.flushes_on_read_budget == 1


def test_read_past_deadline_flushes_to_cold_recompute():
    clock = FakeClock()
    db = UncertainDatabase(base_facts())
    query = open_query()
    policy = StalenessPolicy(max_stale_mutations=100, refresh_deadline=5.0)
    with ViewManager(db, staleness=policy, clock=clock) as mgr:
        view = mgr.register(query)
        apply_ops(db, witness(3))
        clock.advance(4.9)
        assert view.answers != cold(db, query)  # inside the deadline: stale
        clock.advance(0.2)  # now 5.1s since the first deferred mutation
        assert view.answers == cold(db, query)
        assert mgr.staleness_stats.flushes_on_read_deadline == 1
        assert mgr.pending_mutations == 0


def test_explicit_flush_restores_freshness():
    db = UncertainDatabase(base_facts())
    query = open_query()
    with ViewManager(db, staleness=StalenessPolicy(max_stale_mutations=10)) as mgr:
        view = mgr.register(query)
        apply_ops(db, witness(3))
        assert mgr.flush()
        assert view.answers == cold(db, query)
        assert mgr.staleness_stats.flushes_explicit == 1
        assert not mgr.flush()  # nothing pending: a no-op


def test_batch_cancellation_nets_out_in_changelog():
    db = UncertainDatabase(base_facts())
    fact = parse_fact("R('k9' | 'v9')")
    with ViewManager(db, staleness=StalenessPolicy(max_stale_mutations=10)) as mgr:
        mgr.register(open_query())
        with db.batch():
            db.add(fact)
            db.discard(fact)
        assert mgr.pending_mutations == 0  # add+discard cancel to nothing
        db.add(fact)
        db.discard(fact)  # separate notifications also net out on merge
        assert mgr.pending_mutations == 0


def test_refresh_all_drops_deferred_changelog():
    db = UncertainDatabase(base_facts())
    query = open_query()
    with ViewManager(db, staleness=StalenessPolicy(max_stale_mutations=10)) as mgr:
        view = mgr.register(query)
        apply_ops(db, witness(3))
        assert mgr.pending_mutations > 0
        mgr.refresh_all()
        assert mgr.pending_mutations == 0
        assert view.answers == cold(db, query)


def test_eager_manager_never_defers():
    db = UncertainDatabase(base_facts())
    query = open_query()
    with ViewManager(db) as mgr:
        view = mgr.register(query)
        apply_ops(db, witness(3))
        assert mgr.pending_mutations == 0
        assert mgr.staleness is None
        assert mgr.staleness_stats.deferred_batches == 0
        assert view.answers == cold(db, query)


@pytest.mark.parametrize("seed", range(4))
def test_randomized_staleness_harness(seed):
    """Random mutations, reads, flushes, and clock jumps against the contract.

    Invariants checked at every step:

    * a read right after ``flush()`` or past the deadline equals a cold
      recompute of ``certain_answers`` on the live database;
    * a read served stale happened with at most ``max_stale_mutations``
      net pending mutations (and the post-read pending count never exceeds
      the budget either — past-budget reads must have flushed).
    """
    rng = random.Random(seed)
    budget = rng.choice([0, 1, 3, 6])
    deadline = rng.choice([None, 4.0])
    clock = FakeClock()
    # Reuse the multi-tenant generator for a deterministic mutation supply.
    (trace,) = multi_tenant_workload(
        num_tenants=1, steps=0, seed=seed, initial_facts=24
    ).traces
    db = UncertainDatabase(trace.facts)
    query = open_query()
    policy = StalenessPolicy(max_stale_mutations=budget, refresh_deadline=deadline)
    domain = [f"t0~c{j}" for j in range(24)]

    def random_ops():
        ops = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.25 and len(db):
                ops.append(("discard", rng.choice(sorted(db.facts, key=str))))
            else:
                relation = rng.choice(
                    [atom.relation for atom in query.atoms]
                )
                ops.append(
                    ("add", relation.fact(rng.choice(domain), rng.choice(domain)))
                )
        return ops

    with ViewManager(db, staleness=policy, clock=clock) as mgr:
        view = mgr.register(query)
        for _ in range(60):
            action = rng.random()
            if action < 0.45:
                apply_ops(db, random_ops())
            elif action < 0.8:
                pending_before = mgr.pending_mutations
                deadline_hit = (
                    deadline is not None
                    and mgr.pending_mutations > 0
                    and mgr._deferred_since is not None
                    and clock() - mgr._deferred_since >= deadline
                )
                answers = view.answers
                if pending_before > budget or deadline_hit:
                    # The read must have flushed: identical to cold recompute.
                    assert answers == cold(db, query)
                    assert mgr.pending_mutations == 0
                else:
                    # Served possibly-stale, but bounded: nothing flushed,
                    # and the backlog is within the configured budget.
                    assert mgr.pending_mutations == pending_before
                    assert pending_before <= budget
                assert mgr.pending_mutations <= budget
            elif action < 0.9:
                mgr.flush()
                assert view.answers == cold(db, query)
            else:
                clock.advance(rng.uniform(0.5, 3.0))
        # Final word: an explicit flush always reconverges.
        mgr.flush()
        assert view.answers == cold(db, query)
