"""Property-based tests (hypothesis) for the core data structures and invariants."""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import AttackGraph, enumerate_cycles, has_strong_cycle
from repro.certainty import (
    certain_brute_force,
    certain_two_atom,
    is_certain,
    is_purified,
    purify,
)
from repro.core import ComplexityBand, classify
from repro.fd import FDSet, fd
from repro.model import RelationSchema, UncertainDatabase, Variable
from repro.model.repairs import count_repairs, enumerate_repairs, is_repair
from repro.query import parse_query
from repro.workloads import random_acyclic_query

# --------------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------------

_VARIABLES = [Variable(name) for name in "uvwxyz"]

variable_sets = st.sets(st.sampled_from(_VARIABLES), max_size=4)

functional_dependencies = st.builds(
    fd,
    st.sets(st.sampled_from(_VARIABLES), min_size=1, max_size=3),
    st.sets(st.sampled_from(_VARIABLES), min_size=1, max_size=3),
)

fd_sets = st.lists(functional_dependencies, max_size=6).map(FDSet)

R2 = RelationSchema("R", 2, 1)
S2 = RelationSchema("S", 2, 1)

constants = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def small_databases(draw):
    """Random databases over two binary relations with small domains."""
    facts = draw(
        st.lists(
            st.tuples(st.sampled_from([R2, S2]), constants, constants),
            max_size=10,
        )
    )
    db = UncertainDatabase()
    for relation, first, second in facts:
        db.add(relation.fact(first, second))
    return db


@st.composite
def pair_databases(draw):
    """Random databases for the weak-cycle pair query {R(x|y), S(y|x)}."""
    query = parse_query("R(x | y), S(y | x)")
    schema = query.schema()
    facts = draw(
        st.lists(
            st.tuples(st.sampled_from(["R", "S"]), constants, constants),
            max_size=9,
        )
    )
    db = UncertainDatabase()
    for name, first, second in facts:
        db.add(schema[name].fact(first, second))
    return query, db


# --------------------------------------------------------------------------------
# Functional dependency properties
# --------------------------------------------------------------------------------


@given(fd_sets, variable_sets)
def test_closure_is_extensive(fds, attributes):
    assert attributes <= fds.closure(attributes)


@given(fd_sets, variable_sets)
def test_closure_is_idempotent(fds, attributes):
    closure = fds.closure(attributes)
    assert fds.closure(closure) == closure


@given(fd_sets, variable_sets, variable_sets)
def test_closure_is_monotone(fds, first, second):
    assert fds.closure(first) <= fds.closure(first | second)


@given(fd_sets)
def test_minimal_cover_is_equivalent(fds):
    assert fds.minimal_cover().equivalent(fds)


# --------------------------------------------------------------------------------
# Repair properties
# --------------------------------------------------------------------------------


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(small_databases())
def test_repair_count_is_product_of_block_sizes(db):
    assert count_repairs(db) == len(list(enumerate_repairs(db)))


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(small_databases())
def test_every_enumerated_repair_is_a_repair(db):
    for repair in enumerate_repairs(db):
        assert is_repair(db, repair)
        assert len(repair) == db.num_blocks()


# --------------------------------------------------------------------------------
# Purification properties (Lemma 1)
# --------------------------------------------------------------------------------


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pair_databases())
def test_purification_preserves_certainty(case):
    query, db = case
    purified = purify(db, query)
    assert is_purified(purified, query)
    assert purified.facts <= db.facts
    assert certain_brute_force(db, query) == certain_brute_force(purified, query)


# --------------------------------------------------------------------------------
# Solver agreement properties
# --------------------------------------------------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pair_databases())
def test_pair_solver_agrees_with_oracle(case):
    query, db = case
    assert certain_two_atom(db, query) == certain_brute_force(db, query)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pair_databases())
def test_dispatcher_agrees_with_oracle_on_pairs(case):
    query, db = case
    assert is_certain(db, query) == certain_brute_force(db, query)


# --------------------------------------------------------------------------------
# Attack graph properties over random acyclic queries
# --------------------------------------------------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=2, max_value=5))
def test_lemma4_on_random_queries(seed, atoms):
    """A strong cycle exists iff a strong 2-cycle exists (Lemma 4)."""
    query = random_acyclic_query(seed=seed, atoms=atoms)
    graph = AttackGraph(query)
    cycles = enumerate_cycles(graph)
    has_strong = any(c.is_strong for c in cycles)
    has_strong_two = any(c.is_strong and c.length == 2 for c in cycles)
    assert has_strong == has_strong_two
    assert has_strong == has_strong_cycle(graph)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=2, max_value=5))
def test_classifier_covers_random_acyclic_queries(seed, atoms):
    """Every acyclic self-join-free query lands in a supported band, and the
    bands are consistent with the attack-graph structure."""
    query = random_acyclic_query(seed=seed, atoms=atoms)
    classification = classify(query)
    assert classification.band.is_supported
    graph = AttackGraph(query)
    if classification.band is ComplexityBand.FO:
        assert graph.is_acyclic()
    if classification.band is ComplexityBand.CONP_COMPLETE:
        assert has_strong_cycle(graph)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10**6))
def test_classifier_is_deterministic(seed):
    query = random_acyclic_query(seed=seed, atoms=4)
    assert classify(query).band == classify(query).band
