"""Tests for repro.query.hypergraph and repro.query.jointree."""

import pytest

from repro.model.symbols import Variable
from repro.query import (
    ConjunctiveQuery,
    NotAcyclicError,
    all_join_trees,
    build_join_tree,
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    is_acyclic,
    parse_query,
)
from repro.query.hypergraph import QueryHypergraph

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestAcyclicity:
    def test_single_atom_is_acyclic(self):
        assert is_acyclic(parse_query("R(x | y)"))

    def test_empty_query_is_acyclic(self):
        assert is_acyclic(ConjunctiveQuery([]))

    def test_two_atoms_always_acyclic(self):
        assert is_acyclic(parse_query("R(x | y), S(y | x)"))

    def test_path_is_acyclic(self):
        assert is_acyclic(parse_query("R(x | y), S(y | z), T(z | w)"))

    def test_triangle_is_cyclic(self):
        assert not is_acyclic(parse_query("R(x | y), S(y | z), T(z | x)"))

    def test_ck_cyclic_for_k_at_least_3(self):
        assert is_acyclic(cycle_query_c(2))
        assert not is_acyclic(cycle_query_c(3))
        assert not is_acyclic(cycle_query_c(4))

    def test_ack_always_acyclic(self):
        for k in (2, 3, 4, 5):
            assert is_acyclic(cycle_query_ac(k))

    def test_paper_queries_acyclic(self):
        assert is_acyclic(figure2_q1())
        assert is_acyclic(figure4_query())

    def test_gyo_reduction_steps(self):
        hypergraph = QueryHypergraph(parse_query("R(x | y), S(y | z)"))
        steps, remaining = hypergraph.gyo_reduction()
        assert len(steps) == 1 and len(remaining) == 1

    def test_disconnected_query_is_acyclic(self):
        assert is_acyclic(parse_query("R(x | y), S(z | w)"))


class TestJoinTree:
    def test_build_raises_on_cyclic(self):
        with pytest.raises(NotAcyclicError):
            build_join_tree(parse_query("R(x | y), S(y | z), T(z | x)"))

    def test_tree_has_n_minus_one_edges(self):
        query = figure2_q1()
        tree = build_join_tree(query)
        assert len(tree.edges) == len(query) - 1

    def test_connectedness_condition(self):
        for query in (figure2_q1(), figure4_query(), cycle_query_ac(3), parse_query("R(x | y), S(y | z)")):
            assert build_join_tree(query).satisfies_connectedness()

    def test_single_atom_tree(self):
        tree = build_join_tree(parse_query("R(x | y)"))
        assert tree.edges == []

    def test_disconnected_query_tree_connects_all_atoms(self):
        tree = build_join_tree(parse_query("R(x | y), S(z | w)"))
        assert len(tree.edges) == 1
        assert tree.satisfies_connectedness()

    def test_path_between_atoms(self):
        query = figure2_q1()
        tree = build_join_tree(query)
        atoms = {a.name: a for a in query.atoms}
        path = tree.path(atoms["T"], atoms["P"])
        assert path[0] == atoms["T"] and path[-1] == atoms["P"]
        assert all(atom in query.atoms for atom in path)

    def test_path_labels_match_paper_example3(self):
        """The path F –{x}– G –{x,y}– H used in Example 3."""
        query = figure2_q1()
        tree = build_join_tree(query)
        atoms = {a.name: a for a in query.atoms}
        labels = tree.path_labels(atoms["R"], atoms["T"])
        label_names = [frozenset(v.name for v in label) for label in labels]
        assert frozenset({"x"}) in label_names
        assert frozenset({"x", "y"}) in label_names

    def test_path_to_self(self):
        query = figure2_q1()
        tree = build_join_tree(query)
        atom = query.atoms[0]
        assert tree.path(atom, atom) == [atom]

    def test_neighbors(self):
        query = parse_query("R(x | y), S(y | z)")
        tree = build_join_tree(query)
        for atom in query.atoms:
            assert len(tree.neighbors(atom)) == 1

    def test_all_join_trees_small_query(self):
        query = parse_query("R(x | y), S(y | z)")
        trees = all_join_trees(query)
        assert len(trees) == 1

    def test_all_join_trees_respect_connectedness(self):
        query = parse_query("A(x | y), B(y | z), D(y | w)")
        for tree in all_join_trees(query):
            assert tree.satisfies_connectedness()
