"""Tests for repro.attacks.cycles and repro.attacks.properties."""

import pytest

from repro.attacks import (
    AttackGraph,
    all_cycles_terminal,
    atoms_on_cycles,
    check_lemma2,
    check_lemma3,
    check_lemma4,
    check_lemma6,
    check_lemma7,
    check_plus_subset_box,
    cycle_is_terminal,
    enumerate_cycles,
    has_strong_cycle,
    lemma_report,
    strong_cycles,
    strong_two_cycle,
    strongly_connected_components,
    weak_cycles,
)
from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
    parse_query,
)
from repro.workloads import random_corpus


class TestCycleEnumeration:
    def test_acyclic_graph_has_no_cycles(self):
        assert enumerate_cycles(AttackGraph(fuxman_miller_cfree_example())) == []

    def test_q1_cycles(self):
        """Example 4: q1 has a strong 2-cycle and a strong 3-cycle."""
        cycles = enumerate_cycles(AttackGraph(figure2_q1()))
        lengths = sorted(c.length for c in cycles)
        assert 2 in lengths and 3 in lengths
        assert any(c.is_strong and c.length == 2 for c in cycles)
        assert any(c.is_strong and c.length == 3 for c in cycles)
        assert any(c.is_weak and c.length == 2 for c in cycles)

    def test_figure4_cycles_weak_terminal(self):
        cycles = enumerate_cycles(AttackGraph(figure4_query()))
        assert len(cycles) == 3
        assert all(c.is_weak and c.is_terminal and c.length == 2 for c in cycles)

    def test_ac3_two_cycles_nonterminal(self):
        cycles = enumerate_cycles(AttackGraph(cycle_query_ac(3)))
        two_cycles = [c for c in cycles if c.length == 2]
        assert len(two_cycles) == 3
        assert all(c.is_weak and not c.is_terminal for c in cycles)

    def test_canonical_key_rotation_invariant(self):
        cycles = enumerate_cycles(AttackGraph(figure2_q1()))
        keys = [c.canonical_key() for c in cycles]
        assert len(keys) == len(set(keys))


class TestStrongCycleDetection:
    def test_q1_has_strong_cycle(self):
        graph = AttackGraph(figure2_q1())
        assert has_strong_cycle(graph)
        witness = strong_two_cycle(graph)
        assert witness is not None
        source, target = witness
        assert graph.is_strong_attack(source, target)
        assert graph.has_attack(target, source)

    def test_q0_has_strong_cycle(self):
        assert has_strong_cycle(AttackGraph(kolaitis_pema_q0()))

    def test_weak_only_queries(self):
        for query in (figure4_query(), cycle_query_ac(3), cycle_query_c(2)):
            graph = AttackGraph(query)
            assert not has_strong_cycle(graph)
            assert strong_two_cycle(graph) is None
            assert strong_cycles(graph) == []
            assert len(weak_cycles(graph)) >= 1

    def test_acyclic_has_no_strong_cycle(self):
        assert not has_strong_cycle(AttackGraph(fuxman_miller_cfree_example()))


class TestTerminality:
    def test_figure4_all_terminal(self):
        assert all_cycles_terminal(AttackGraph(figure4_query()))

    def test_ac3_not_all_terminal(self):
        assert not all_cycles_terminal(AttackGraph(cycle_query_ac(3)))

    def test_two_atom_cycles_always_terminal(self):
        assert all_cycles_terminal(AttackGraph(cycle_query_c(2)))
        assert all_cycles_terminal(AttackGraph(kolaitis_pema_q0()))

    def test_cycle_is_terminal_helper(self):
        graph = AttackGraph(cycle_query_ac(3))
        ring_pair = [a for a in graph.query.atoms if a.name in ("R1", "R2")]
        assert not cycle_is_terminal(graph, ring_pair)

    def test_atoms_on_cycles(self):
        graph = AttackGraph(figure4_query())
        on_cycles = {a.name for a in atoms_on_cycles(graph)}
        assert on_cycles == {"R1", "R2", "R3", "R4", "R5", "R6"}

    def test_strongly_connected_components_partition_atoms(self):
        graph = AttackGraph(figure2_q1())
        components = strongly_connected_components(graph)
        atoms = [a for component in components for a in component]
        assert sorted(map(str, atoms)) == sorted(map(str, graph.atoms))


class TestLemmas:
    PAPER_QUERIES = [
        figure2_q1(),
        figure4_query(),
        cycle_query_ac(2),
        cycle_query_ac(3),
        cycle_query_c(2),
        kolaitis_pema_q0(),
        fuxman_miller_cfree_example(),
        parse_query("A(x | y), B(x, y | z), D(z | x)"),
    ]

    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: str(q)[:40])
    def test_lemmas_on_paper_queries(self, query):
        graph = AttackGraph(query)
        assert check_lemma2(graph)
        assert check_lemma3(graph)
        assert check_lemma4(graph)
        assert check_lemma6(graph)
        assert check_lemma7(graph)
        assert check_plus_subset_box(graph)

    def test_lemmas_on_random_corpus(self):
        for query in random_corpus(25, seed=99):
            if query.has_self_join:
                continue
            graph = AttackGraph(query)
            for name, holds in lemma_report(graph):
                assert holds, f"{name} violated on {query}"
