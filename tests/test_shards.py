"""Tests for the delta-shipped shard runtime.

Two contracts under test.  *Exact equivalence*: for every complexity band
and every shard count, ``ShardedCertaintySession`` (and ``ViewManager``'s
sharded maintenance mode) returns what the sequential session returns —
before, during, and after mutation streams; ownership validation must
catch every cross-shard decision.  *Delta shipping*: mutations between
dispatches reach the long-lived workers as O(delta) payloads, never as
pool rebuilds or full snapshots.
"""

import pickle
import random

import pytest

from repro import (
    ParallelCertaintySession,
    ShardedCertaintySession,
    UncertainDatabase,
    ViewManager,
    certain_answers,
    certain_answers_sharded,
    parse_facts,
    parse_query,
    shard_of_key,
)
from repro.engine.shards import DeadlineExceeded, _read_set_is_local
from repro.fo.compile import ReadSet
from repro.incremental.support import SupportIndex
from repro.model.symbols import Constant, Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.families import path_query
from repro.workloads import (
    apply_batch,
    bursty_mutation_stream,
    mutation_stream,
    synthetic_instance,
    zipfian_instance,
)

SHARD_COUNTS = (1, 2, 4)


def open_variant(query, variable_name):
    """The query with one variable freed (same atoms, one free variable)."""
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


def band_workloads():
    """(query, allow_exponential, instance kwargs) per complexity band."""
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(
            open_variant(path_query(3), "x1"),
            False,
            dict(domain_size=6, witnesses=12, noise_per_relation=8, conflict_rate=0.5),
            id="fo-band",
        ),
        pytest.param(
            open_variant(figure4_query(), "x"),
            False,
            dict(domain_size=4, witnesses=6, noise_per_relation=3, conflict_rate=0.4),
            id="ptime-not-fo-band",
        ),
        pytest.param(
            open_variant(figure2_q1(), "z"),
            True,
            dict(domain_size=3, witnesses=4, noise_per_relation=2, conflict_rate=0.4),
            id="conp-band-allow-exponential",
        ),
        pytest.param(
            selfjoin,
            True,
            dict(domain_size=4, witnesses=6, noise_per_relation=4, conflict_rate=0.5),
            id="self-join-per-grounding",
        ),
    ]


def distinct_shard_values(n_shards, count=2):
    """Constant values provably owned by *count* different shards."""
    by_shard = {}
    for i in range(1000):
        value = f"v{i}"
        shard = shard_of_key((Constant(value),), n_shards)
        by_shard.setdefault(shard, value)
        if len(by_shard) >= count:
            return [by_shard[s] for s in sorted(by_shard)[:count]]
    raise AssertionError("hash unexpectedly constant")  # pragma: no cover


class TestShardOfKey:
    def test_deterministic_and_in_range(self):
        keys = [(Constant(f"v{i}"), Constant(i)) for i in range(50)]
        for n in SHARD_COUNTS:
            owners = [shard_of_key(k, n) for k in keys]
            assert owners == [shard_of_key(k, n) for k in keys]
            assert all(0 <= s < n for s in owners)
        assert len({shard_of_key(k, 4) for k in keys}) > 1

    def test_single_shard_owns_everything(self):
        assert shard_of_key((Constant("x"),), 1) == 0
        assert shard_of_key((), 1) == 0

    def test_value_based_not_object_based(self):
        # Two distinct Constant objects wrapping equal values hash alike
        # (the hash reads values, never salted object hashes) ...
        assert shard_of_key((Constant("a"),), 4) == shard_of_key((Constant("a"),), 4)
        # ... while a str and an int of equal repr length still differ.
        assert repr("7") != repr(7)
        spread = {shard_of_key((Constant(f"k{i}"),), 4) for i in range(64)}
        assert len(spread) == 4


class TestReadSetValidation:
    def test_single_shard_is_always_local(self):
        rs = ReadSet(opaque=True, domain_read=True, relations=frozenset({"R"}))
        assert _read_set_is_local(rs, 0, 1)

    def test_global_reads_are_never_local(self):
        assert not _read_set_is_local(ReadSet(opaque=True), 0, 2)
        assert not _read_set_is_local(ReadSet(domain_read=True), 0, 2)
        assert not _read_set_is_local(ReadSet(relations=frozenset({"R"})), 0, 2)

    def test_blocks_must_hash_home(self):
        a, b = distinct_shard_values(2)
        key_a, key_b = (Constant(a),), (Constant(b),)
        home = shard_of_key(key_a, 2)
        rs = ReadSet(blocks=frozenset({("R", key_a)}))
        assert _read_set_is_local(rs, home, 2)
        assert not _read_set_is_local(rs, 1 - home, 2)
        both = ReadSet(blocks=frozenset({("R", key_a), ("S", key_b)}))
        assert not _read_set_is_local(both, home, 2)

    def test_wildcard_masks_are_never_local(self):
        key = (Constant("a"),)
        home = shard_of_key(key, 2)
        pinned = ReadSet(key_masks=frozenset({("R", key)}))
        assert _read_set_is_local(pinned, home, 2)
        wild = ReadSet(key_masks=frozenset({("R", (None,))}))
        assert not _read_set_is_local(wild, home, 2)


class TestShardedEqualsSequential:
    @pytest.mark.parametrize("query,allow,kwargs", band_workloads())
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_randomized_workloads(self, query, allow, kwargs, n_shards):
        for seed in range(2):
            db = synthetic_instance(query, seed=seed, **kwargs)
            expected = certain_answers(db, query, allow_exponential=allow)
            with ShardedCertaintySession(
                db,
                n_shards=n_shards,
                min_shard_candidates=1,
                allow_exponential=allow,
            ) as session:
                assert session.certain_answers(query) == expected

    @pytest.mark.parametrize("query,allow,kwargs", band_workloads())
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_under_mutation_streams(self, query, allow, kwargs, n_shards):
        db = synthetic_instance(query, seed=5, **kwargs)
        with ShardedCertaintySession(
            db,
            n_shards=n_shards,
            min_shard_candidates=1,
            allow_exponential=allow,
        ) as session:
            assert session.certain_answers(query) == certain_answers(
                db, query, allow_exponential=allow
            )
            stream = mutation_stream(
                query, db, steps=6, seed=17, batch_range=(1, 4)
            )
            for batch in stream:
                apply_batch(db, batch)
                assert session.certain_answers(query) == certain_answers(
                    db, query, allow_exponential=allow
                ), f"diverged at {n_shards} shards after {batch}"
            # The long-lived pool never rebuilt for any of those mutations.
            assert session.stats.bootstraps == 1
            assert session.stats.worker_restarts == 0

    def test_one_shot_wrapper(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=11, domain_size=6, witnesses=12)
        assert certain_answers_sharded(db, query, n_shards=2) == certain_answers(
            db, query
        )

    def test_shard_partition_is_exact(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=3, domain_size=6, witnesses=12)
        with ShardedCertaintySession(db, n_shards=4, min_shard_candidates=1) as s:
            s.certain_answers(query)
            counts = s.shard_fact_counts()
            assert sum(counts) == len(db)
            for fact in db.facts:
                assert counts[s.owner_of(fact.key_terms)] > 0


class TestShardRoutingEdgeCases:
    def _setup(self, n_shards):
        query = parse_query("R(x | y), S(x | z)", free=["x"])
        schema = query.schema()
        rng = random.Random(23)
        db = UncertainDatabase(schema=schema)
        values = [f"v{i}" for i in range(12)]
        for _ in range(40):
            db.add(schema["R"].fact(rng.choice(values), rng.choice(values)))
            db.add(schema["S"].fact(rng.choice(values), rng.choice(values)))
        session = ShardedCertaintySession(
            db, n_shards=n_shards, min_shard_candidates=1
        )
        return query, schema, db, session

    @pytest.mark.parametrize("n_shards", (2, 4))
    def test_block_emptied_then_refilled(self, n_shards):
        query, schema, db, session = self._setup(n_shards)
        with session:
            session.certain_answers(query)
            victim = sorted(
                db.block_keys(), key=lambda k: (k[0],) + tuple(str(c) for c in k[1])
            )[0]
            refill = sorted(db.block(victim), key=str)
            db.remove_block(victim)
            assert session.certain_answers(query) == certain_answers(db, query)
            for fact in refill:
                db.add(fact)
            assert session.certain_answers(query) == certain_answers(db, query)
            assert sum(session.shard_fact_counts()) == len(db)

    @pytest.mark.parametrize("n_shards", (2, 4))
    def test_constants_interned_after_pool_start(self, n_shards):
        query, schema, db, session = self._setup(n_shards)
        with session:
            session.certain_answers(query)  # pool is up, wire table frozen
            # Certain witness over constants the wire table has never seen:
            # singleton blocks survive every repair.
            db.add(schema["R"].fact("fresh_x", "fresh_y"))
            db.add(schema["S"].fact("fresh_x", "fresh_z"))
            answers = session.certain_answers(query)
            assert answers == certain_answers(db, query)
            assert (Constant("fresh_x"),) in answers
            assert session.stats.bootstraps == 1

    def test_cross_shard_candidates_fall_back(self):
        # A join whose atoms key on *different* constants: pick a pair of
        # values provably owned by different shards, so the candidate's
        # support cannot be shard-local and validation must reroute it.
        emp, dept = distinct_shard_values(2)
        query = parse_query("Emp(name | dept), Dept(dept | city)")
        schema = query.schema()
        db = UncertainDatabase(
            parse_facts(
                [
                    f"Emp('{emp}' | '{dept}')",
                    f"Dept('{dept}' | 'Mons')",
                ],
                schema=schema,
            )
        )
        open_query = parse_query(
            "Emp(name | dept), Dept(dept | 'Mons')", free=["name"], schema=schema
        )
        with ShardedCertaintySession(db, n_shards=2, min_shard_candidates=1) as s:
            answers = s.certain_answers(open_query)
            assert answers == certain_answers(db, open_query)
            assert s.stats.cross_shard_fallbacks >= 1
            # Fallbacks learn: the candidate routes to the parent now, so a
            # mutation that dirties no routing re-asks without falling back.
            before = s.stats.cross_shard_fallbacks
            db.add(schema["Dept"].fact(dept, "Paris"))  # no new candidates
            assert s.certain_answers(open_query) == certain_answers(db, open_query)
            routed = s._routing[open_query]
            assert routed[(Constant(emp),)] == -1
            assert s.stats.cross_shard_fallbacks == before

    @pytest.mark.parametrize("n_shards", (2, 4))
    def test_same_key_join_stays_shard_local(self, n_shards):
        query, schema, db, session = self._setup(n_shards)
        with session:
            answers = session.certain_answers(query)
            assert answers == certain_answers(db, query)
            # R and S blocks of one candidate share the key x, so
            # co-partitioning keeps every FO decision on its own shard.
            assert session.stats.cross_shard_fallbacks == 0
            assert session.stats.parent_decides == 0


class TestDeltaShipping:
    def test_deltas_stay_below_snapshot_bytes(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(
            query, seed=2, domain_size=10, witnesses=40, noise_per_relation=30
        )
        with ShardedCertaintySession(db, n_shards=2, min_shard_candidates=1) as s:
            s.certain_answers(query)
            snapshot_bytes = len(pickle.dumps(s.store.snapshot()))
            for batch in mutation_stream(query, db, steps=5, seed=9, batch_range=(1, 3)):
                apply_batch(db, batch)
                s.certain_answers(query)
            assert s.stats.delta_flushes > 0
            assert 0 < s.stats.max_flush_bytes < snapshot_bytes
            # Steady state ships the delta, not the database: even the sum
            # of every post-bootstrap flush stays below one full snapshot.
            assert s.stats.delta_bytes_shipped < snapshot_bytes

    def test_net_cancellation_ships_nothing(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=2, domain_size=6, witnesses=12)
        with ShardedCertaintySession(db, n_shards=2, min_shard_candidates=1) as s:
            s.certain_answers(query)
            fact = next(iter(db.facts))
            with db.batch():  # add/discard net out inside the batch already
                db.discard(fact)
                db.add(fact)
            # ...and an add/discard pair across two unbatched notifications
            # nets out in the pending delta instead (the freshly interned
            # constant values may still ship — rows must not).
            relation = fact.relation
            fresh = relation.fact(*(["zz"] * relation.arity))
            db.add(fresh)
            db.discard(fresh)
            s.certain_answers(query)
            assert s.stats.delta_facts_shipped == 0


class TestShardedViewMaintenance:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_view_states_match_recompute_under_streams(self, n_shards):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(
            query, seed=6, domain_size=6, witnesses=12, noise_per_relation=8
        )
        with ViewManager(db, shard_workers=n_shards, parallel_min_dirty=2) as manager:
            view = manager.register(query)
            assert view.answers == frozenset(certain_answers(db, query))
            for batch in mutation_stream(
                query, db, steps=8, seed=31, batch_range=(1, 4)
            ):
                apply_batch(db, batch)
                assert view.answers == frozenset(certain_answers(db, query))
            view.support.check_invariants()
            sharded = manager.sharded_session
            assert sharded is not None and sharded.stats.worker_restarts == 0

    def test_shard_workers_excludes_parallel_workers(self):
        db = UncertainDatabase()
        with pytest.raises(ValueError):
            ViewManager(db, parallel_workers=2, shard_workers=2)

    def test_support_index_routes_dirty_candidates(self):
        query = parse_query("R(x | y), S(x | z)", free=["x"])
        schema = query.schema()
        rng = random.Random(41)
        db = UncertainDatabase(schema=schema)
        values = [f"v{i}" for i in range(16)]
        for _ in range(60):
            db.add(schema["R"].fact(rng.choice(values), rng.choice(values)))
            db.add(schema["S"].fact(rng.choice(values), rng.choice(values)))
        with ViewManager(db, shard_workers=2, parallel_min_dirty=1) as manager:
            view = manager.register(query)
            for _ in range(6):
                with db.batch():
                    for _ in range(4):
                        db.add(schema["R"].fact(rng.choice(values), rng.choice(values)))
                assert view.answers == frozenset(certain_answers(db, query))
            stats = manager.sharded_session.stats
            # Same-key join: every worker verdict validated as shard-local.
            assert stats.shard_decides > 0
            assert stats.cross_shard_fallbacks == 0


class TestSupportIndexRouting:
    def shard_fn(self, n):
        return lambda key: shard_of_key(tuple(key), n)

    def test_routes_single_shard_read_sets(self):
        a, b = distinct_shard_values(2)
        key_a, key_b = (Constant(a),), (Constant(b),)
        index = SupportIndex()
        index.set(("c1",), ReadSet(blocks=frozenset({("R", key_a), ("S", key_a)})))
        index.set(("c2",), ReadSet(blocks=frozenset({("R", key_a), ("S", key_b)})))
        fn = self.shard_fn(2)
        assert index.route(("c1",), fn) == shard_of_key(key_a, 2)
        assert index.route(("c2",), fn) is None  # spans two shards
        assert index.route(("unknown",), fn) is None

    def test_refuses_global_relation_and_wildcard_reads(self):
        key = (Constant("a"),)
        fn = self.shard_fn(2)
        index = SupportIndex()
        index.set(("g",), ReadSet(domain_read=True))
        index.set(("r",), ReadSet(relations=frozenset({"R"})))
        index.set(("w",), ReadSet(key_masks=frozenset({("R", (None,))})))
        index.set(("m",), ReadSet(key_masks=frozenset({("R", key)})))
        assert index.route(("g",), fn) is None
        assert index.route(("r",), fn) is None
        assert index.route(("w",), fn) is None
        assert index.route(("m",), fn) == shard_of_key(key, 2)

    def test_block_ids_need_a_decoder(self):
        key = (Constant("a"),)
        rs = ReadSet(block_ids=frozenset({7}))
        fn = self.shard_fn(2)
        undecodable = SupportIndex()
        undecodable.set(("c",), rs)
        assert undecodable.route(("c",), fn) is None
        decodable = SupportIndex(block_key_decoder=lambda block_id: ("R", key))
        decodable.set(("c",), rs)
        assert decodable.route(("c",), fn) == shard_of_key(key, 2)


class TestParallelRebuildCoalescing:
    def _session(self, db):
        return ParallelCertaintySession(
            db,
            max_workers=2,
            mode="process",
            min_parallel_candidates=1,
            track_bytes=True,
        )

    def test_batch_bumps_version_once(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        with self._session(db) as session:
            before = session._version.version
            relation = query.atoms[0].relation
            with db.batch():
                for i in range(10):
                    db.add(relation.fact(f"m{i}", f"m{i + 1}"))
            assert session._version.version == before + 1

    def test_mutations_between_dispatches_cost_one_rebuild(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        expected_rebuilds = 1  # the initial pool build
        with self._session(db) as session:
            session.certain_answers(query)
            assert session.stats.rebuilds == expected_rebuilds
            relation = query.atoms[0].relation
            for round_ in range(2):
                # M unbatched mutations + one batch between two dispatches...
                for i in range(5):
                    db.add(relation.fact(f"r{round_}_{i}", f"r{round_}_{i + 1}"))
                with db.batch():
                    db.add(relation.fact(f"rb{round_}", "x"))
                    db.add(relation.fact(f"rc{round_}", "y"))
                session.certain_answers(query)
                expected_rebuilds += 1  # ...trigger exactly one rebuild
                assert session.stats.rebuilds == expected_rebuilds
            # Reads without interleaved writes never rebuild.
            session.certain_answers(query)
            assert session.stats.rebuilds == expected_rebuilds
            assert session.stats.dispatches >= 4
            assert session.stats.snapshot_bytes_shipped > 0

    def test_serial_decides_counted(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        with ParallelCertaintySession(db, max_workers=2, mode="serial") as session:
            session.certain_answers(query)
            assert session.stats.serial_decides > 0
            assert session.stats.rebuilds == 0


class TestSkewedGenerators:
    def test_zipfian_instance_is_deterministic_and_skewed(self):
        query = open_variant(path_query(3), "x1")
        a = zipfian_instance(query, seed=7, domain_size=32, facts_per_relation=64)
        b = zipfian_instance(query, seed=7, domain_size=32, facts_per_relation=64)
        assert a.facts == b.facts
        assert zipfian_instance(query, seed=8).facts != a.facts
        # Skew: hot key values accumulate far more facts (their blocks grow
        # deep with conflicts) than the median key value.
        from collections import Counter

        per_value = Counter(fact.key_terms[0].value for fact in a.facts)
        counts = sorted(per_value.values(), reverse=True)
        assert counts[0] >= 3 * counts[len(counts) // 2]

    def test_bursty_stream_live_contract_and_determinism(self):
        query = open_variant(path_query(3), "x1")
        db1 = zipfian_instance(query, seed=3, domain_size=16, facts_per_relation=24)
        db2 = zipfian_instance(query, seed=3, domain_size=16, facts_per_relation=24)
        batches1, batches2 = [], []
        for batch in bursty_mutation_stream(query, db1, steps=20, seed=5):
            batches1.append(list(batch))
            apply_batch(db1, batch)
        for batch in bursty_mutation_stream(query, db2, steps=20, seed=5):
            batches2.append(list(batch))
            apply_batch(db2, batch)
        assert batches1 == batches2
        assert db1.facts == db2.facts
        sizes = [len(b) for b in batches1]
        assert max(sizes) >= 8, "no burst fired in 20 steps"
        assert min(sizes) <= 2, "no quiet step in 20 steps"

    def test_bursty_stream_discards_name_existing_facts(self):
        query = open_variant(path_query(3), "x1")
        db = zipfian_instance(query, seed=4, domain_size=16, facts_per_relation=24)
        for batch in bursty_mutation_stream(query, db, steps=15, seed=6):
            staged = set(db.facts)
            for kind, payload in batch:
                if kind == "discard":
                    assert payload in staged
            apply_batch(db, batch)


class TestLifecycle:
    def test_close_is_idempotent_and_refuses_afterwards(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        session = ShardedCertaintySession(db, n_shards=2, min_shard_candidates=1)
        session.certain_answers(query)
        assert session.pool_started
        session.close()
        session.close()
        assert session.closed and not session.pool_started
        with pytest.raises(RuntimeError):
            session.certain_answers(query)
        # The observer detached: mutations after close must not error.
        db.add(query.atoms[0].relation.fact("a", "b"))

    def test_killed_worker_recovers_on_the_next_call(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        with ShardedCertaintySession(
            db, n_shards=2, min_shard_candidates=1, restart_backoff=0.0
        ) as s:
            expected = certain_answers(db, query)
            assert s.certain_answers(query) == expected
            for worker in s._workers:
                worker.process.terminate()
                worker.process.join(timeout=5)
            db.add(query.atoms[0].relation.fact("post_crash", "b"))
            expected = certain_answers(db, query)
            # The dead shards are detected, their candidates serve from the
            # parent inline, and the supervisor schedules restarts.
            assert s.certain_answers(query) == expected
            assert s.stats.worker_failures >= 1
            db.add(query.atoms[0].relation.fact("post_recovery", "c"))
            # The next dispatch restarts the dead shards individually —
            # no full-pool re-bootstrap — and serves sharded again.
            assert s.certain_answers(query) == certain_answers(db, query)
            assert s.stats.worker_restarts >= 1
            assert s.stats.bootstraps == 1
            assert all(w is not None for w in s._workers)

    def test_heartbeat_counts_sweeps_not_workers(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        with ShardedCertaintySession(db, n_shards=4, min_shard_candidates=1) as s:
            s.certain_answers(query)
            assert s.heartbeat() == [True] * 4
            assert s.stats.heartbeats == 1  # one sweep, not one per worker
            s.heartbeat()
            assert s.stats.heartbeats == 2

    def test_injected_clock_governs_request_deadlines(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(query, seed=1, domain_size=6, witnesses=12)
        fake_now = [1e9]  # far beyond any plausible time.monotonic()
        with ShardedCertaintySession(
            db, n_shards=2, min_shard_candidates=1, clock=lambda: fake_now[0]
        ) as s:
            # A deadline in the fake timeline's future is honoured even
            # though the real clock passed it long ago...
            assert s.certain_answers(query, deadline=2e9) == certain_answers(
                db, query
            )
            # ...and one in the fake past expires immediately.
            with pytest.raises(DeadlineExceeded):
                s.certain_answers(query, deadline=fake_now[0] - 1.0)

    def test_boolean_queries_are_rejected(self):
        query = path_query(3)
        db = synthetic_instance(query, seed=1)
        with ShardedCertaintySession(db, n_shards=2) as s:
            with pytest.raises(ValueError):
                s.certain_answers(query)
            # solve/is_certain delegate inline instead.
            assert isinstance(s.is_certain(query), bool)
            assert s.solve(query).certain == s.is_certain(query)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedCertaintySession(UncertainDatabase(), n_shards=0)
