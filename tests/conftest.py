"""Shared fixtures for the test suite."""

import random

import pytest

from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
)
from repro.workloads import figure1_database, figure1_query, figure6_database


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return random.Random(20130106)


@pytest.fixture
def fm_query():
    """The acyclic-attack-graph query {R(x|y), S(y|z)} (FO band)."""
    return fuxman_miller_cfree_example()


@pytest.fixture
def q1():
    """The Figure 2 query (coNP-complete band)."""
    return figure2_q1()


@pytest.fixture
def q0():
    """The Kolaitis–Pema two-atom coNP-complete query."""
    return kolaitis_pema_q0()


@pytest.fixture
def fig4():
    """The Figure 4 query (P, not FO)."""
    return figure4_query()


@pytest.fixture
def ac3():
    """The AC(3) query (P via Theorem 4)."""
    return cycle_query_ac(3)


@pytest.fixture
def c2():
    """The C(2) query (P, not FO)."""
    return cycle_query_c(2)


@pytest.fixture
def conference_db():
    """The Figure 1 database."""
    return figure1_database()


@pytest.fixture
def conference_query():
    """The Figure 1 query."""
    return figure1_query()


@pytest.fixture
def fig6_db():
    """The Figure 6 database for AC(3)."""
    return figure6_database()
