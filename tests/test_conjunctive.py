"""Tests for repro.query.conjunctive and the parser / substitution utilities."""

import pytest

from repro.model.atoms import RelationSchema
from repro.model.symbols import Constant, Variable
from repro.query import (
    ConjunctiveQuery,
    QueryParseError,
    ground_free_variables,
    make_substitution,
    parse_atom,
    parse_fact,
    parse_facts,
    parse_query,
    query,
    rename_variables,
    substitute_atom,
    substitute_query,
)

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 3, 2)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestConjunctiveQuery:
    def test_set_semantics_deduplicates(self):
        q = ConjunctiveQuery([R.atom(X, Y), R.atom(X, Y)])
        assert len(q) == 1

    def test_equality_is_set_based(self):
        first = ConjunctiveQuery([R.atom(X, Y), S.atom(X, Y, Z)])
        second = ConjunctiveQuery([S.atom(X, Y, Z), R.atom(X, Y)])
        assert first == second and hash(first) == hash(second)

    def test_variables_and_constants(self):
        q = ConjunctiveQuery([R.atom(X, Constant("a"))])
        assert q.variables == {X} and q.constants == {Constant("a")}

    def test_self_join_detection(self):
        assert ConjunctiveQuery([R.atom(X, Y), R.atom(Y, Z)]).has_self_join
        assert not ConjunctiveQuery([R.atom(X, Y), S.atom(X, Y, Z)]).has_self_join

    def test_without(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(X, Y, Z)])
        assert len(q.without(R.atom(X, Y))) == 1

    def test_restricted_to(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(X, Y, Z)])
        sub = q.restricted_to([R.atom(X, Y)])
        assert sub.atoms == (R.atom(X, Y),)
        with pytest.raises(ValueError):
            q.restricted_to([R.atom(Y, X)])

    def test_free_variables_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([R.atom(X, Y)], free_variables=[Z])

    def test_boolean_and_free(self):
        q = ConjunctiveQuery([R.atom(X, Y)], free_variables=[X])
        assert not q.is_boolean
        assert q.as_boolean().is_boolean

    def test_key_fds(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z, X)])
        fds = q.key_fds()
        assert fds.implies([X], [Y])
        assert fds.implies([Y, Z], [X])
        excluded = q.key_fds(exclude=[R.atom(X, Y)])
        assert not excluded.implies([X], [Y])

    def test_atom_with_relation(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(X, Y, Z)])
        assert q.atom_with_relation("R") == R.atom(X, Y)
        with pytest.raises(KeyError):
            q.atom_with_relation("T")

    def test_empty_query(self):
        q = ConjunctiveQuery([])
        assert q.is_empty and q.is_boolean and q.variables == frozenset()

    def test_query_helper(self):
        assert len(query(R.atom(X, Y), S.atom(X, Y, Z))) == 2


class TestParser:
    def test_parse_atom_with_key_separator(self):
        atom = parse_atom("R(x | y, z)")
        assert atom.relation.arity == 3 and atom.relation.key_size == 1

    def test_parse_atom_all_key_without_separator(self):
        atom = parse_atom("S(x, y)")
        assert atom.relation.is_all_key

    def test_parse_constants(self):
        atom = parse_atom("R('Rome' | 3)")
        assert Constant("Rome") in atom.constants and Constant(3) in atom.constants

    def test_parse_query_shares_schema(self):
        q = parse_query("R(x | y), S(y | z)")
        assert {a.name for a in q} == {"R", "S"}

    def test_parse_query_with_free_variables(self):
        q = parse_query("R(x | y)", free=["x"])
        assert q.free_variables == (Variable("x"),)

    def test_parse_query_signature_conflict(self):
        schema = parse_query("R(x | y)").schema()
        with pytest.raises(QueryParseError):
            parse_query("R(x, y | z)", schema=schema)

    def test_parse_fact(self):
        fact = parse_fact("R('a' | 1)")
        assert fact.values == ("a", 1)

    def test_parse_fact_rejects_variables(self):
        with pytest.raises(QueryParseError):
            parse_fact("R(a | 1)")

    def test_parse_facts_list(self):
        facts = parse_facts(["R('a' | 1)", "R('b' | 2)"])
        assert len(facts) == 2

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_atom("R(x")
        with pytest.raises(QueryParseError):
            parse_atom("R()")
        with pytest.raises(QueryParseError):
            parse_atom("R(x, $)")

    def test_parse_empty_query(self):
        assert parse_query("").is_empty


class TestSubstitution:
    def test_make_substitution_mismatch(self):
        with pytest.raises(ValueError):
            make_substitution([X], ["a", "b"])
        with pytest.raises(ValueError):
            make_substitution([X, X], ["a", "b"])

    def test_substitute_atom_to_fact(self):
        substitution = make_substitution([X, Y], ["a", "b"])
        image = substitute_atom(R.atom(X, Y), substitution)
        assert image.is_fact

    def test_substitute_query(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z, X)])
        substituted = substitute_query(q, make_substitution([X], ["a"]))
        assert Variable("x") not in substituted.variables
        assert Constant("a") in substituted.constants

    def test_substitute_drops_free_variables(self):
        q = ConjunctiveQuery([R.atom(X, Y)], free_variables=[X])
        grounded = substitute_query(q, make_substitution([X], ["a"]))
        assert grounded.free_variables == ()

    def test_ground_free_variables(self):
        q = ConjunctiveQuery([R.atom(X, Y)], free_variables=[X])
        grounded = ground_free_variables(q, ["a"])
        assert grounded.is_boolean and Constant("a") in grounded.constants

    def test_rename_variables(self):
        q = ConjunctiveQuery([R.atom(X, Y)])
        renamed = rename_variables(q, {Y: Z})
        assert Z in renamed.variables and Y not in renamed.variables
