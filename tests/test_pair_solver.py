"""Tests for the two-atom solver (Kolaitis–Pema coverage)."""

import pytest

from repro.certainty import (
    IntractableQueryError,
    UnsupportedQueryError,
    certain_brute_force,
    certain_two_atom,
    certain_weak_cycle_pair,
    is_two_atom_query,
)
from repro.model import UncertainDatabase
from repro.query import cycle_query_c, figure2_q1, fuxman_miller_cfree_example, kolaitis_pema_q0, parse_query

from tests.helpers import random_instance

WEAK_CYCLE_PAIRS = [
    cycle_query_c(2),
    parse_query("R(x | y), S(y | x)"),
    parse_query("R(x | y, u), S(y | x, v)"),
    parse_query("R(x | y, z), S(y | x, z)"),
    parse_query("R(x, y | z), S(x, z | y)"),
    parse_query("R(x | y, y), S(y | x)"),
]


class TestDispatch:
    def test_is_two_atom_query(self):
        assert is_two_atom_query(cycle_query_c(2))
        assert not is_two_atom_query(figure2_q1())
        assert not is_two_atom_query(parse_query("R(x | y), R(y | z)"))

    def test_rejects_wrong_atom_count(self):
        with pytest.raises(UnsupportedQueryError):
            certain_two_atom(UncertainDatabase(), figure2_q1())

    def test_strong_cycle_raises_intractable(self):
        with pytest.raises(IntractableQueryError):
            certain_two_atom(UncertainDatabase(), kolaitis_pema_q0())

    def test_acyclic_pair_uses_fo_path(self, rng):
        q = fuxman_miller_cfree_example()
        for _ in range(10):
            db = random_instance(q, rng)
            assert certain_two_atom(db, q) == certain_brute_force(db, q)

    def test_weak_cycle_pair_rejects_bad_shape(self):
        with pytest.raises(UnsupportedQueryError):
            certain_weak_cycle_pair(UncertainDatabase(), kolaitis_pema_q0())


class TestWeakCyclePairs:
    @pytest.mark.parametrize("query", WEAK_CYCLE_PAIRS, ids=lambda q: str(q)[:40])
    def test_agreement_with_oracle(self, query, rng):
        for _ in range(25):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=5)
            assert certain_two_atom(db, query) == certain_brute_force(db, query)

    @pytest.mark.parametrize("query", WEAK_CYCLE_PAIRS[:3], ids=lambda q: str(q)[:40])
    def test_agreement_with_oracle_larger_domain(self, query, rng):
        for _ in range(10):
            db = random_instance(query, rng, domain_size=4, facts_per_relation=7)
            assert certain_two_atom(db, query) == certain_brute_force(db, query)

    def test_empty_database_not_certain(self):
        assert not certain_two_atom(UncertainDatabase(), cycle_query_c(2))

    def test_single_mutual_witness_certain(self):
        q = cycle_query_c(2)
        schema = q.schema()
        db = UncertainDatabase([schema["R1"].fact("a", "b"), schema["R2"].fact("b", "a")])
        assert certain_two_atom(db, q)

    def test_conflicting_block_with_two_witnesses_is_certain(self):
        """Both choices of the conflicted R1-block complete a witness pair."""
        q = cycle_query_c(2)
        schema = q.schema()
        db = UncertainDatabase(
            [
                schema["R1"].fact("a", "b"),
                schema["R1"].fact("a", "b2"),
                schema["R2"].fact("b", "a"),
                schema["R2"].fact("b2", "a"),
            ]
        )
        assert certain_two_atom(db, q)
        assert certain_brute_force(db, q)

    def test_long_cycle_lets_the_falsifier_escape(self):
        """The complete bipartite 2×2 instance admits a falsifying repair that
        marks the 4-cycle a → b' → a' → b → a (Theorem 4's "Case 2" for k=2)."""
        q = cycle_query_c(2)
        schema = q.schema()
        facts = []
        for source in ("a", "a2"):
            for target in ("b", "b2"):
                facts.append(schema["R1"].fact(source, target))
                facts.append(schema["R2"].fact(target, source))
        db = UncertainDatabase(facts)
        assert not certain_two_atom(db, q)
        assert not certain_brute_force(db, q)

    def test_forced_component_is_certain(self):
        """A component whose only cycles are witness 2-cycles forces the query."""
        q = cycle_query_c(2)
        schema = q.schema()
        db = UncertainDatabase(
            [
                schema["R1"].fact("a", "b"),
                schema["R2"].fact("b", "a"),
                schema["R1"].fact("a2", "b2"),
                schema["R1"].fact("a2", "b3"),
                schema["R2"].fact("b2", "a2"),
                schema["R2"].fact("b3", "a2"),
            ]
        )
        assert certain_two_atom(db, q)
        assert certain_brute_force(db, q)

    def test_extra_shared_variable_blocks_join(self):
        """Anti-parallel facts that disagree on a shared non-key variable do not join."""
        q = parse_query("R(x | y, z), S(y | x, z)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b", 1), schema["S"].fact("b", "a", 2)]
        )
        # The two facts do not agree on z, hence there is no witness at all and
        # after purification the database is empty.
        assert not certain_two_atom(db, q)
        assert not certain_brute_force(db, q)

    def test_extra_shared_variable_with_agreement(self):
        q = parse_query("R(x | y, z), S(y | x, z)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b", 1), schema["S"].fact("b", "a", 1)]
        )
        assert certain_two_atom(db, q)
