"""Tests for the incremental view subsystem (``repro.incremental``).

The central contract is *differential*: after every mutation delivered to a
:class:`ViewManager`, each registered view's answer set equals a cold
``certain_answers`` (or ``is_certain`` for Boolean queries) recomputed from
scratch against the current database — across all complexity bands,
mutation kinds (add / discard / remove_block), and delivery shapes
(per-fact, batched, bulk).  On top of that: support-index invariants, the
relation prefilter, delta candidate discovery, subscriptions, fallbacks,
and the batch/changelog API itself.
"""

import random

import pytest

from repro import (
    CertaintySession,
    ChangeSet,
    MaterializedCertainView,
    UncertainDatabase,
    ViewManager,
    certain_answers,
    is_certain,
    parse_facts,
    parse_query,
)
from repro.certainty import (
    peel_certain,
    purify_copy_count,
    purify_index_build_counts,
    reset_purify_copy_count,
    reset_purify_index_build_counts,
)
from repro.certainty.peeling import empty_base_case
from repro.fo.compile import ReadSet, ReadSetRecorder
from repro.incremental import SupportIndex, delta_candidates
from repro.model.symbols import Constant, Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.families import path_query
from repro.workloads import (
    apply_batch,
    apply_mutation,
    mutation_stream,
    synthetic_instance,
)


def open_variant(query, variable_name):
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


def cold_answers(db, query, allow):
    if query.is_boolean:
        return frozenset([()]) if is_certain(db, query, allow_exponential=allow) else frozenset()
    return frozenset(certain_answers(db, query, allow_exponential=allow))


def emp_dept():
    """The quickstart Emp/Dept instance: FO band, one free variable."""
    query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
    schema = query.schema()
    db = UncertainDatabase(
        parse_facts(
            [
                "Emp('ada' | 'db')",
                "Emp('bob' | 'os')",
                "Emp('bob' | 'net')",
                "Dept('db' | 'Mons')",
                "Dept('os' | 'Mons')",
                "Dept('net' | 'Paris')",
            ],
            schema=schema,
        )
    )
    return query, schema, db


# --------------------------------------------------------------------------------
# The batch / changelog API
# --------------------------------------------------------------------------------


class _Recorder:
    """Observer that logs every notification it receives."""

    def __init__(self):
        self.events = []

    def fact_added(self, fact):
        self.events.append(("add", fact))

    def fact_discarded(self, fact):
        self.events.append(("discard", fact))

    def batch_applied(self, changes):
        self.events.append(("batch", changes))


class TestBatchAPI:
    def test_batch_fires_one_consolidated_notification(self):
        query, schema, db = emp_dept()
        observer = _Recorder()
        db.register_observer(observer)
        f1 = schema["Emp"].fact("eve", "db")
        f2 = schema["Emp"].fact("bob", "net")
        with db.batch():
            db.add(f1)
            db.discard(f2)
            assert db.in_batch
            assert observer.events == []  # nothing fires mid-batch
        assert not db.in_batch
        assert len(observer.events) == 1
        kind, changes = observer.events[0]
        assert kind == "batch"
        assert set(changes.added) == {f1}
        assert set(changes.discarded) == {f2}

    def test_net_semantics_cancel_out(self):
        query, schema, db = emp_dept()
        observer = _Recorder()
        db.register_observer(observer)
        fresh = schema["Emp"].fact("eve", "db")
        existing = schema["Emp"].fact("bob", "net")
        with db.batch():
            db.add(fresh)
            db.discard(fresh)  # add-then-discard cancels
            db.discard(existing)
            db.add(existing)  # discard-then-re-add cancels
        assert observer.events == []  # empty net change: no notification
        assert fresh not in db and existing in db

    def test_nested_batches_merge(self):
        query, schema, db = emp_dept()
        observer = _Recorder()
        db.register_observer(observer)
        with db.batch():
            db.add(schema["Emp"].fact("eve", "db"))
            with db.batch():
                db.add(schema["Emp"].fact("zed", "os"))
        assert len(observer.events) == 1
        assert len(observer.events[0][1].added) == 2

    def test_plain_observers_get_replay(self):
        """Observers without batch_applied still hear every net change."""
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:  # FactIndex observer: replay path
            with db.batch():
                db.add(schema["Emp"].fact("eve", "db"))
                db.remove_block(("Emp", (Constant("bob"),)))
            assert len(session.index.relation("Emp")) == len(db.relation_facts("Emp"))
            assert session.certain_answers(query) == certain_answers(db, query)

    def test_batch_reports_applied_changes_on_exception(self):
        query, schema, db = emp_dept()
        observer = _Recorder()
        db.register_observer(observer)
        fact = schema["Emp"].fact("eve", "db")
        with pytest.raises(RuntimeError):
            with db.batch():
                db.add(fact)
                raise RuntimeError("boom")
        assert fact in db  # the mutation happened...
        assert len(observer.events) == 1  # ...so observers must hear about it

    def test_bulk_add_and_bulk_discard(self):
        query, schema, db = emp_dept()
        observer = _Recorder()
        db.register_observer(observer)
        facts = parse_facts(["Emp('eve' | 'db')", "Emp('zed' | 'os')"], schema=schema)
        db.bulk_add(facts)
        assert all(f in db for f in facts)
        db.bulk_discard(facts)
        assert all(f not in db for f in facts)
        kinds = [kind for kind, _ in observer.events]
        assert kinds == ["batch", "batch"]

    def test_changeset_views(self):
        query, schema, db = emp_dept()
        f1 = schema["Emp"].fact("eve", "db")
        f2 = schema["Dept"].fact("db", "Mons")
        changes = ChangeSet(added=(f1,), discarded=(f2,))
        assert changes.touched_relations() == {"Emp", "Dept"}
        assert changes.touched_blocks() == {f1.block_key, f2.block_key}
        assert len(changes) == 2 and bool(changes)


# --------------------------------------------------------------------------------
# Read sets and the support index
# --------------------------------------------------------------------------------


class TestReadSets:
    def test_session_captures_block_level_support(self):
        """Columnar sessions record dense block ids; same block precision."""
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            support = {}
            certain = session.decide_candidates(
                query,
                sorted({(Constant("ada"),), (Constant("bob"),)}),
                support=support,
            )
            ada_block = session.store.known_block_id("Emp", (Constant("ada"),))
            bob_block = session.store.known_block_id("Emp", (Constant("bob"),))
        assert set(certain) == {(Constant("ada"),), (Constant("bob"),)}
        ada = support[(Constant("ada"),)]
        assert not ada.is_global
        assert ada_block is not None and bob_block is not None
        # ada's decision must depend on her own Emp block…
        assert ada_block in ada.block_ids or "Emp" in ada.relations
        # …and not on bob's (block-level precision is the whole point).
        assert bob_block not in ada.block_ids

    def test_object_backend_captures_object_block_keys(self):
        """The reference backend keeps recording (name, key) block keys."""
        query, schema, db = emp_dept()
        with CertaintySession(db, backend="object") as session:
            support = {}
            certain = session.decide_candidates(
                query,
                sorted({(Constant("ada"),), (Constant("bob"),)}),
                support=support,
            )
        assert set(certain) == {(Constant("ada"),), (Constant("bob"),)}
        ada = support[(Constant("ada"),)]
        assert not ada.is_global
        assert ("Emp", (Constant("ada"),)) in ada.blocks or "Emp" in ada.relations
        assert ("Emp", (Constant("bob"),)) not in ada.blocks

    def test_static_support_for_brute_force(self, q1):
        """coNP decisions record static per-atom support, never opaque."""
        open_q = open_variant(q1, "z")
        db = synthetic_instance(open_q, seed=3, domain_size=3, witnesses=4)
        with CertaintySession(db, allow_exponential=True) as session:
            candidates = sorted(
                {t for t in session.certain_answers(open_q)}
            ) or [(Constant("c0"),)]
            support = {}
            session.decide_candidates(open_q, candidates, support=support)
        query_relations = {atom.relation.name for atom in open_q.atoms}
        assert support
        for read_set in support.values():
            assert not read_set.opaque
            assert not read_set.domain_read
            # Every atom key of q1 is a plain variable, so the static
            # support is exactly the query's relations.
            assert read_set.relations == query_relations

    def test_recorder_freeze_subsumes_scanned_relations(self):
        recorder = ReadSetRecorder()
        recorder.record_block("R", (Constant("a"),))
        recorder.record_block("S", (Constant("b"),))
        recorder.record_relation("R")
        frozen = recorder.freeze()
        assert frozen.relations == frozenset({"R"})
        assert frozen.blocks == frozenset({("S", (Constant("b"),))})

    def test_support_index_invariants_and_dirtying(self):
        index = SupportIndex()
        c1, c2 = (Constant("a"),), (Constant("b"),)
        block = ("R", (Constant("k"),))
        index.set(c1, ReadSet(blocks=frozenset({block})))
        index.set(c2, ReadSet(relations=frozenset({"S"})))
        index.check_invariants()
        schema_r = parse_query("R(x | y)").schema()["R"]
        schema_s = parse_query("S(x | y)").schema()["S"]
        changes = ChangeSet(added=(schema_r.fact("k", "v"),))
        assert index.dirty_for(changes) == {c1}
        changes = ChangeSet(added=(schema_s.fact("q", "v"),))
        assert index.dirty_for(changes) == {c2}
        # Replacing a read set cleans the old entries.
        index.set(c1, ReadSet(opaque=True))
        index.check_invariants()
        assert index.candidates_for_block(block) == set()
        assert index.global_candidates == {c1}
        assert index.dirty_for(ChangeSet(added=(schema_s.fact("z", "v"),))) == {c1, c2}
        index.remove(c1)
        index.remove(c2)
        index.check_invariants()
        assert len(index) == 0


# --------------------------------------------------------------------------------
# Delta candidate discovery
# --------------------------------------------------------------------------------


class TestDeltaCandidates:
    def test_finds_new_candidates_only_through_added_facts(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            fact = schema["Emp"].fact("eve", "db")
            db.add(fact)
            found = delta_candidates(query, session.index, [fact])
        assert (Constant("eve"),) in found

    def test_superset_of_enumeration_delta(self):
        """Every genuinely new candidate is discovered, over random streams."""
        from repro.query.evaluation import answer_tuples

        query, schema, db = emp_dept()
        rng = random.Random(7)
        with CertaintySession(db) as session:
            for _ in range(30):
                before = answer_tuples(query, session.index)
                relation = rng.choice([schema["Emp"], schema["Dept"]])
                fact = relation.fact(
                    rng.choice(["ada", "bob", "eve", "db", "os", "x1", "x2"]),
                    rng.choice(["db", "os", "net", "Mons", "Paris", "y1"]),
                )
                db.add(fact)
                after = answer_tuples(query, session.index)
                found = delta_candidates(query, session.index, [fact])
                assert after - before <= found  # no new candidate is missed


# --------------------------------------------------------------------------------
# Differential maintenance across bands and mutation kinds
# --------------------------------------------------------------------------------


def band_workloads():
    """(query, allow_exponential, instance kwargs) per complexity band."""
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(
            open_variant(path_query(3), "x1"),
            False,
            dict(domain_size=6, witnesses=10, noise_per_relation=6, conflict_rate=0.5),
            id="fo-band",
        ),
        pytest.param(
            path_query(2),
            False,
            dict(domain_size=5, witnesses=6, noise_per_relation=5, conflict_rate=0.5),
            id="fo-band-boolean",
        ),
        pytest.param(
            open_variant(figure4_query(), "x"),
            False,
            dict(domain_size=4, witnesses=5, noise_per_relation=3, conflict_rate=0.4),
            id="ptime-not-fo-band",
        ),
        pytest.param(
            open_variant(figure2_q1(), "z"),
            True,
            dict(domain_size=3, witnesses=4, noise_per_relation=2, conflict_rate=0.4),
            id="conp-band-allow-exponential",
        ),
        pytest.param(
            selfjoin,
            True,
            dict(domain_size=4, witnesses=5, noise_per_relation=3, conflict_rate=0.5),
            id="self-join-per-grounding",
        ),
    ]


class TestDifferentialMaintenance:
    @pytest.mark.parametrize("query,allow,kwargs", band_workloads())
    @pytest.mark.parametrize("batched", [False, True], ids=["per-fact", "batched"])
    @pytest.mark.parametrize("backend", ["columnar", "object"])
    def test_randomized_mutation_streams(self, query, allow, kwargs, batched, backend):
        for seed in range(2):
            db = synthetic_instance(query, seed=seed, **kwargs)
            with ViewManager(db, allow_exponential=allow, backend=backend) as manager:
                view = manager.register(query)
                assert view.answers == cold_answers(db, query, allow)
                stream = mutation_stream(
                    query,
                    db,
                    steps=12,
                    seed=seed * 101 + 7,
                    domain_size=kwargs["domain_size"],
                    batch_range=(1, 3) if batched else (1, 1),
                )
                for batch in stream:
                    if batched:
                        apply_batch(db, batch)
                    else:
                        for op in batch:
                            apply_mutation(db, op)
                    assert view.answers == cold_answers(db, query, allow), (
                        f"diverged after {batch}"
                    )
                    view.support.check_invariants()
                # Every band records static per-atom support now: a full
                # refresh may be caused by a per-grounding plan or an
                # oversized dirty set, never by a band opaque to support.
                assert view.stats.full_refreshes_band_opaque == 0
                assert manager.full_refresh_causes()["band_opaque"] == 0

    def test_fine_grained_flag_matches_band(self):
        fo = open_variant(path_query(3), "x1")
        db = synthetic_instance(fo, seed=0, domain_size=5, witnesses=6)
        with ViewManager(db) as manager:
            assert manager.register(fo).fine_grained
        # PTIME-band views are fine-grained too now that the Theorem 3/4
        # solvers record static per-atom support.
        ptime = open_variant(figure4_query(), "x")
        db = synthetic_instance(ptime, seed=0, domain_size=4, witnesses=4)
        with ViewManager(db) as manager:
            assert manager.register(ptime).fine_grained
        # Only per-grounding (self-join) plans stay coarse.
        selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
        db = synthetic_instance(selfjoin, seed=0, domain_size=4, witnesses=4)
        with ViewManager(db, allow_exponential=True) as manager:
            assert not manager.register(selfjoin).fine_grained

    def test_boolean_view_tracks_is_certain(self):
        query = path_query(2)
        db = synthetic_instance(query, seed=5, domain_size=5, witnesses=5)
        with ViewManager(db) as manager:
            view = manager.register(query)
            for batch in mutation_stream(query, db, steps=15, seed=3):
                apply_batch(db, batch)
                assert view.is_certain == is_certain(db, query)

    def test_remove_block_maintenance(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            db.remove_block(("Dept", (Constant("os"),)))
            assert view.answers == cold_answers(db, query, False)
            db.remove_block(("Emp", (Constant("bob"),)))
            assert view.answers == cold_answers(db, query, False)


# --------------------------------------------------------------------------------
# Support-driven precision
# --------------------------------------------------------------------------------


class TestSupportPrecision:
    def test_unrelated_relation_is_skipped(self):
        query, schema, db = emp_dept()
        other = parse_query("Room(x | y)").schema()["Room"]
        with ViewManager(db) as manager:
            view = manager.register(query)
            refreshes = view.stats.refreshes
            db.add(other.fact("r1", "b2"))
            assert view.stats.refreshes == refreshes + 1
            assert view.stats.skipped_refreshes == 1
            assert view.answers == cold_answers(db, query, False)

    def test_single_block_mutation_dirties_only_dependents(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            assert view.fine_grained
            fact = schema["Dept"].fact("net", "Lille")  # bob's second dept block
            expected = view.support.dirty_for(ChangeSet(added=(fact,)))
            db.add(fact)
            assert view.stats.last_dirty == len(expected)
            # ada's chain never reads the net block: she must not be re-decided.
            assert (Constant("ada"),) not in expected
            assert view.answers == cold_answers(db, query, False)

    def test_oversized_dirty_fraction_falls_back_to_full_refresh(self):
        query, schema, db = emp_dept()
        with ViewManager(db, full_refresh_threshold=0.0) as manager:
            view = manager.register(query)
            full = view.stats.full_refreshes
            db.add(schema["Dept"].fact("net", "Lille"))
            assert view.stats.full_refreshes == full + 1
            assert view.answers == cold_answers(db, query, False)

    def test_parallel_fanout_matches_sequential(self):
        query = open_variant(path_query(3), "x1")
        db = synthetic_instance(
            query, seed=2, domain_size=6, witnesses=12, noise_per_relation=8
        )
        with ViewManager(db, parallel_workers=2, parallel_min_dirty=1) as manager:
            view = manager.register(query)
            assert view.answers == cold_answers(db, query, False)
            for batch in mutation_stream(query, db, steps=4, seed=9, domain_size=6):
                apply_batch(db, batch)
                assert view.answers == cold_answers(db, query, False)
                view.support.check_invariants()


# --------------------------------------------------------------------------------
# Candidate-set GC (vanished candidates leave without a full refresh)
# --------------------------------------------------------------------------------


class TestCandidateGC:
    def test_vanished_candidates_are_collected_without_full_refresh(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            assert (Constant("bob"),) in view.tracked_candidates
            full = view.stats.full_refreshes
            db.remove_block(("Emp", (Constant("bob"),)))
            # Maintenance stayed incremental, yet bob — whose supporting
            # facts all vanished — was dropped from verdicts and support.
            assert view.stats.full_refreshes == full
            assert (Constant("bob"),) not in view.tracked_candidates
            assert (Constant("bob"),) not in set(view.support.candidates())
            assert view.stats.gc_removed >= 1
            assert (Constant("ada"),) in view.tracked_candidates
            view.support.check_invariants()
            assert view.answers == cold_answers(db, query, False)

    def test_reinserted_candidate_is_rediscovered_after_gc(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            db.remove_block(("Emp", (Constant("bob"),)))
            assert (Constant("bob"),) not in view.tracked_candidates
            db.add(schema["Emp"].fact("bob", "os"))
            assert (Constant("bob"),) in view.tracked_candidates
            assert view.answers == cold_answers(db, query, False)

    def test_gc_keeps_still_enumerable_candidates(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            # Dropping one of bob's two Emp facts leaves him enumerable.
            db.discard(schema["Emp"].fact("bob", "os"))
            assert (Constant("bob"),) in view.tracked_candidates
            assert view.stats.gc_removed == 0
            assert view.answers == cold_answers(db, query, False)


# --------------------------------------------------------------------------------
# Subscriptions
# --------------------------------------------------------------------------------


class TestSubscriptions:
    def test_deltas_match_answer_set_evolution(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            live = set(view.answers)
            events = []

            def on_insert(t):
                events.append(("+", t))
                assert t not in live
                live.add(t)

            def on_retract(t):
                events.append(("-", t))
                assert t in live
                live.discard(t)

            view.subscribe(on_insert=on_insert, on_retract=on_retract)
            for batch in mutation_stream(query, db, steps=20, seed=4):
                apply_batch(db, batch)
                assert live == set(view.answers)
            assert view.stats.inserts_emitted == sum(1 for k, _ in events if k == "+")

    def test_unsubscribe_stops_delivery(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            events = []
            subscription = view.subscribe(on_insert=lambda t: events.append(t))
            subscription.unsubscribe()
            db.add(schema["Emp"].fact("eve", "db"))
            assert events == []

    def test_subscriber_mutations_are_serialised(self):
        """A callback-triggered mutation must not corrupt the view."""
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            fired = []

            def on_insert(t):
                if not fired:
                    fired.append(t)
                    db.add(schema["Emp"].fact("zed", "os"))  # re-entrant mutation

            view.subscribe(on_insert=on_insert)
            db.add(schema["Emp"].fact("eve", "db"))
            assert fired
            assert view.answers == cold_answers(db, query, False)


# --------------------------------------------------------------------------------
# Manager lifecycle
# --------------------------------------------------------------------------------


class TestManagerLifecycle:
    def test_register_is_idempotent(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            assert isinstance(view, MaterializedCertainView)
            assert manager.register(query) is view
            assert len(manager.views) == 1

    def test_unregister_stops_maintenance(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            manager.unregister(view)
            refreshes = view.stats.refreshes
            db.add(schema["Emp"].fact("eve", "db"))
            assert view.stats.refreshes == refreshes

    def test_closed_manager_detaches(self):
        query, schema, db = emp_dept()
        manager = ViewManager(db)
        view = manager.register(query)
        manager.close()
        db.add(schema["Emp"].fact("eve", "db"))
        assert (Constant("eve"),) not in view.answers  # frozen at close time
        with pytest.raises(RuntimeError):
            manager.register(query)
        manager.close()  # idempotent

    def test_external_session_is_not_closed(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            manager = ViewManager(db, session=session)
            manager.register(query)
            manager.close()
            assert not session.closed
            other = UncertainDatabase()
            with pytest.raises(ValueError):
                ViewManager(other, session=session)

    def test_supplied_session_policy_governs_parallel_fanout(self):
        """A supplied session's allow_exponential must extend to the pool."""
        query = open_variant(figure2_q1(), "z")
        db = synthetic_instance(query, seed=1, domain_size=3, witnesses=4)
        with CertaintySession(db, allow_exponential=True) as session:
            with ViewManager(
                db, session=session, parallel_workers=2, parallel_min_dirty=1
            ) as manager:
                view = manager.register(query)  # coarse: refreshes fan out
                relation = query.atoms[0].relation
                db.add(relation.fact(*["c0"] * relation.arity))
                # Without the policy alignment this raises IntractableQueryError
                # inside the parallel re-decision once the dirty set fans out.
                assert view.answers == cold_answers(db, query, True)

    def test_refresh_all_prunes_stale_candidates(self):
        query, schema, db = emp_dept()
        with ViewManager(db) as manager:
            view = manager.register(query)
            db.remove_block(("Emp", (Constant("bob"),)))
            manager.refresh_all()
            assert (Constant("bob"),) not in set(view.support.candidates())
            assert view.answers == cold_answers(db, query, False)


# --------------------------------------------------------------------------------
# Deep residual peeling: threaded level indexes, columnar vs object
# --------------------------------------------------------------------------------


class TestDeepResidualPeeling:
    """The peeling recursion threads purify's indexes through residuals.

    ``path_query(4)`` peels one unattacked atom per level, so the recursion
    is four levels deep — past the depth-3 floor where a rebuild-per-purify
    implementation would multiply index constructions.  The differential
    runs both backends on the same databases, checks the verdicts against
    the independent FO-rewriting solver, and uses the purify build counters
    to assert that (a) indexes are only built on copy events (O(levels),
    not one per purify call) and (b) the built class matches the backend —
    columnar sessions stay columnar through every residual level.
    """

    def _deep_instance(self, query, seed):
        return synthetic_instance(
            query,
            seed=seed,
            domain_size=5,
            witnesses=6,
            noise_per_relation=5,
            conflict_rate=0.5,
        )

    def test_deep_peeling_differential_and_index_threading(self):
        query = path_query(4)
        for seed in range(4):
            db = self._deep_instance(query, seed)
            verdicts = {}
            builds = {}
            copies = {}
            for backend in ("columnar", "object"):
                with CertaintySession(db, backend=backend) as session:
                    index = session.index
                    reset_purify_index_build_counts()
                    reset_purify_copy_count()
                    verdicts[backend] = peel_certain(
                        db, query, empty_base_case, index=index
                    )
                    builds[backend] = purify_index_build_counts()
                    copies[backend] = purify_copy_count()
            assert verdicts["columnar"] == verdicts["object"] == is_certain(db, query)
            # Index class matches the backend at every recursion level.
            assert set(builds["columnar"]) <= {"ColumnarFactIndex"}
            assert set(builds["object"]) <= {"FactIndex"}
            # With a session index supplied at the top, purify only builds
            # an index when a block removal forces a private copy.
            for backend in ("columnar", "object"):
                assert sum(builds[backend].values()) <= copies[backend]

    def test_deep_peeling_level_index_classes_at_depth_three(self):
        # Depth 5: one level deeper than the floor, same invariants.
        query = path_query(5)
        db = self._deep_instance(query, seed=11)
        with CertaintySession(db, backend="columnar") as session:
            reset_purify_index_build_counts()
            verdict = peel_certain(db, query, empty_base_case, index=session.index)
            assert set(purify_index_build_counts()) <= {"ColumnarFactIndex"}
        with CertaintySession(db, backend="object") as session:
            reset_purify_index_build_counts()
            assert peel_certain(
                db, query, empty_base_case, index=session.index
            ) == verdict
            assert set(purify_index_build_counts()) <= {"FactIndex"}


# --------------------------------------------------------------------------------
# The mutation-versioned candidate memo
# --------------------------------------------------------------------------------


class TestCandidateMemo:
    def test_memo_serves_cached_candidates_until_version_advances(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            baseline = session.candidate_answers(query)
            # Plant a sentinel at the current version: a memo hit returns it
            # verbatim, proving candidate enumeration was skipped.
            sentinel = [(Constant("sentinel"),)]
            session._candidate_memo[query] = (db.mutation_version, list(sentinel))
            assert session.candidate_answers(query) == sentinel
            # Any effective mutation bumps the version and drops the entry.
            db.add(schema["Emp"].fact("eve", "db"))
            fresh = session.candidate_answers(query)
            assert fresh != sentinel
            assert set(fresh) == set(baseline) | {(Constant("eve"),)}

    def test_each_mutation_kind_invalidates(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            fact = schema["Emp"].fact("eve", "db")
            version = db.mutation_version
            db.add(fact)
            assert db.mutation_version > version
            assert (Constant("eve"),) in set(session.candidate_answers(query))
            version = db.mutation_version
            db.discard(fact)
            assert db.mutation_version > version
            assert (Constant("eve"),) not in set(session.candidate_answers(query))
            version = db.mutation_version
            db.remove_block(("Emp", (Constant("bob"),)))
            assert db.mutation_version > version
            assert (Constant("bob"),) not in set(session.candidate_answers(query))

    def test_ineffective_mutations_keep_the_memo(self):
        query, schema, db = emp_dept()
        existing = schema["Emp"].fact("ada", "db")
        with CertaintySession(db) as session:
            session.candidate_answers(query)
            version = db.mutation_version
            db.add(existing)  # already present: no change, no bump
            db.discard(schema["Emp"].fact("zoe", "db"))  # absent: no change
            assert db.mutation_version == version
            assert session._candidate_memo[query][0] == version

    def test_memo_across_batch_boundaries(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            before = set(session.candidate_answers(query))
            version = db.mutation_version
            fact = schema["Emp"].fact("eve", "db")
            with db.batch():
                db.add(fact)
                # Inside the batch the version is intentionally stale —
                # observers (the session index included) have not been
                # notified yet, so cached candidates match what the index
                # would produce anyway.
                assert db.mutation_version == version
                assert set(session.candidate_answers(query)) == before
            # The version advances once at batch exit, before observer
            # fan-out, so the first post-batch read recomputes.
            assert db.mutation_version == version + 1
            assert set(session.candidate_answers(query)) == before | {
                (Constant("eve"),)
            }

    def test_empty_batch_does_not_advance_the_version(self):
        query, schema, db = emp_dept()
        with CertaintySession(db) as session:
            session.candidate_answers(query)
            version = db.mutation_version
            with db.batch():
                pass
            assert db.mutation_version == version
            assert session._candidate_memo[query][0] == version
