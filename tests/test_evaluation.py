"""Tests for repro.query.evaluation: query satisfaction, valuations, witnesses."""

import pytest

from repro.model.atoms import RelationSchema
from repro.model.symbols import Constant, Variable
from repro.query import (
    ConjunctiveQuery,
    FactIndex,
    all_valuations,
    answer_tuples,
    find_valuation,
    match_atom,
    parse_query,
    satisfies,
    witnesses,
)
from repro.model.valuation import Valuation

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 2, 1)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def join_db():
    return [
        R.fact("a", "b"),
        R.fact("a", "c"),
        R.fact("d", "d"),
        S.fact("b", "e"),
        S.fact("c", "e"),
    ]


class TestMatchAtom:
    def test_binds_variables(self):
        result = match_atom(R.atom(X, Y), R.fact("a", "b"), Valuation())
        assert result is not None and result[X] == Constant("a")

    def test_respects_existing_bindings(self):
        bound = Valuation({X: "z"})
        assert match_atom(R.atom(X, Y), R.fact("a", "b"), bound) is None

    def test_constant_mismatch(self):
        assert match_atom(R.atom(X, Constant("q")), R.fact("a", "b"), Valuation()) is None

    def test_repeated_variable(self):
        assert match_atom(R.atom(X, X), R.fact("a", "b"), Valuation()) is None
        assert match_atom(R.atom(X, X), R.fact("d", "d"), Valuation()) is not None

    def test_wrong_relation(self):
        assert match_atom(R.atom(X, Y), S.fact("a", "b"), Valuation()) is None


class TestSatisfaction:
    def test_join_satisfied(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        assert satisfies(join_db, q)

    def test_join_not_satisfied(self):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        assert not satisfies([R.fact("a", "b"), S.fact("zzz", "e")], q)

    def test_empty_query_always_satisfied(self, join_db):
        assert satisfies(join_db, ConjunctiveQuery([]))
        assert satisfies([], ConjunctiveQuery([]))

    def test_empty_db_never_satisfies_nonempty_query(self):
        assert not satisfies([], ConjunctiveQuery([R.atom(X, Y)]))

    def test_constants_in_query(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Constant("b"))])
        assert satisfies(join_db, q)
        assert not satisfies(join_db, ConjunctiveQuery([R.atom(X, Constant("zzz"))]))

    def test_find_valuation_returns_witnessing_binding(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        valuation = find_valuation(q, join_db)
        assert valuation is not None
        assert valuation.ground(q.atoms[0]) in join_db


class TestAllValuationsAndWitnesses:
    def test_all_valuations_count(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        assert len(all_valuations(q, join_db)) == 2  # (a,b,e) and (a,c,e)

    def test_witnesses_are_subsets_of_db(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        for witness in witnesses(q, join_db):
            assert witness.issubset(set(join_db))

    def test_witness_count_deduplicates(self, join_db):
        q = ConjunctiveQuery([R.atom(X, Y)])
        assert len(witnesses(q, join_db)) == 3

    def test_reuse_fact_index(self, join_db):
        index = FactIndex(join_db)
        q = ConjunctiveQuery([R.atom(X, Y), S.atom(Y, Z)])
        assert satisfies(index, q) or find_valuation(q, index) is not None


class TestAnswerTuples:
    def test_free_variable_answers(self, join_db):
        q = parse_query("R(x | y), S(y | z)", free=["x", "z"])
        answers = answer_tuples(q, join_db)
        assert (Constant("a"), Constant("e")) in answers

    def test_answer_tuples_requires_free_variables(self, join_db):
        with pytest.raises(ValueError):
            answer_tuples(ConjunctiveQuery([R.atom(X, Y)]), join_db)
