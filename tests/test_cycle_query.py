"""Tests for the Theorem 4 solver (AC(k)/C(k)) and the Lemma 9 reduction."""

import pytest

from repro.certainty import (
    UnsupportedQueryError,
    certain_brute_force,
    certain_ck_via_reduction,
    certain_cycle_query,
    lemma9_expand,
)
from repro.model import UncertainDatabase
from repro.query import ConjunctiveQuery, cycle_query_ac, cycle_query_c, parse_query, satisfies
from repro.query.families import cycle_query_shape
from repro.model.repairs import is_repair
from repro.workloads import figure6_database, figure7_falsifying_repairs, ring_instance

from tests.helpers import random_instance


class TestFigure6:
    def test_not_certain(self):
        assert not certain_cycle_query(figure6_database(), cycle_query_ac(3))

    def test_oracle_agrees(self):
        db = figure6_database()
        q = cycle_query_ac(3)
        assert certain_cycle_query(db, q) == certain_brute_force(db, q)

    def test_figure7_repairs_falsify(self):
        db = figure6_database()
        q = cycle_query_ac(3)
        for repair in figure7_falsifying_repairs():
            assert is_repair(db, repair)
            assert not satisfies(repair, q)

    def test_certain_after_encoding_the_missing_triangle(self):
        """Encoding the fourth triangle (a, b, c) in S3 removes Case 1 but the
        long 6-cycle still falsifies the query."""
        db = figure6_database()
        q = cycle_query_ac(3)
        s3 = q.schema()["S3"]
        db.add(s3.fact("a", "b", "c"))
        assert certain_cycle_query(db, q) == certain_brute_force(db, q)


class TestAgainstOracle:
    @pytest.mark.parametrize("k", [2, 3])
    def test_ack_random_agreement(self, k, rng):
        query = cycle_query_ac(k)
        for _ in range(20):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=5)
            assert certain_cycle_query(db, query) == certain_brute_force(db, query)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_ck_random_agreement(self, k, rng):
        query = cycle_query_c(k)
        for _ in range(15):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            assert certain_cycle_query(db, query) == certain_brute_force(db, query)

    def test_ring_instances(self):
        for seed in range(6):
            query, db = ring_instance(3, copies=2, chords=2, encoded_fraction=0.7, seed=seed)
            assert certain_cycle_query(db, query) == certain_brute_force(db, query)

    def test_ring_instances_ck(self):
        for seed in range(6):
            query, db = ring_instance(3, copies=2, chords=1, seed=seed, with_sk=False)
            assert certain_cycle_query(db, query) == certain_brute_force(db, query)

    def test_empty_database_not_certain(self):
        assert not certain_cycle_query(UncertainDatabase(), cycle_query_ac(3))

    def test_single_encoded_cycle_certain(self):
        query = cycle_query_ac(3)
        schema = query.schema()
        db = UncertainDatabase(
            [
                schema["R1"].fact("a", "b"),
                schema["R2"].fact("b", "c"),
                schema["R3"].fact("c", "a"),
                schema["S3"].fact("a", "b", "c"),
            ]
        )
        assert certain_cycle_query(db, query)

    def test_single_unencoded_cycle_not_certain(self):
        query = cycle_query_ac(3)
        schema = query.schema()
        db = UncertainDatabase(
            [
                schema["R1"].fact("a", "b"),
                schema["R2"].fact("b", "c"),
                schema["R3"].fact("c", "a"),
            ]
        )
        # Without the S3 fact there is no witness at all.
        assert not certain_cycle_query(db, query)

    def test_rejects_non_cycle_query(self):
        with pytest.raises(UnsupportedQueryError):
            certain_cycle_query(UncertainDatabase(), parse_query("R(x | y), S(y | z)"))


class TestLemma9:
    def test_expand_adds_full_all_key_relation(self):
        c3 = cycle_query_c(3)
        ac3_like = cycle_query_shape(c3)
        db = random_instance(c3, __import__("random").Random(0), domain_size=2, facts_per_relation=2)
        from repro.model.atoms import RelationSchema

        sk = RelationSchema("SK", 3, 3)
        target = ConjunctiveQuery(list(c3.atoms) + [sk.atom(*ac3_like.variables)])
        expanded = lemma9_expand(db, target, c3)
        domain_size = len(db.active_domain())
        assert len(expanded.relation_facts("SK")) == domain_size**3

    def test_expand_requires_all_key_extras(self):
        c2 = cycle_query_c(2)
        bigger = parse_query("R1(x | y), R2(y | x), Extra(x | y)")
        with pytest.raises(UnsupportedQueryError):
            lemma9_expand(UncertainDatabase(), bigger, c2)

    @pytest.mark.parametrize("k", [2, 3])
    def test_reduction_agrees_with_direct_algorithm(self, k, rng):
        query = cycle_query_c(k)
        for _ in range(8):
            db = random_instance(query, rng, domain_size=2, facts_per_relation=3)
            direct = certain_cycle_query(db, query)
            reduced = certain_ck_via_reduction(db, query)
            oracle = certain_brute_force(db, query)
            assert direct == reduced == oracle

    def test_reduction_rejects_ack(self):
        with pytest.raises(UnsupportedQueryError):
            certain_ck_via_reduction(UncertainDatabase(), cycle_query_ac(2))
