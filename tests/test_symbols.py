"""Tests for repro.model.symbols: variables, constants, term helpers."""

import pytest

from repro.model.symbols import (
    Constant,
    Variable,
    constants_of,
    fresh_variables,
    is_constant,
    is_variable,
    make_constant,
    make_term,
    variables_of,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_ordering(self):
        assert Variable("a") < Variable("b")

    def test_str(self):
        assert str(Variable("abc")) == "abc"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            Variable(3)

    def test_not_equal_to_constant_with_same_payload(self):
        assert Variable("x") != Constant("x")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)

    def test_values_of_different_types(self):
        assert Constant("a") != Constant(("a",))

    def test_tuple_values_allowed(self):
        pair = Constant(("x", "y"))
        assert pair.value == ("x", "y")

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            Constant(["list", "not", "hashable"])

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_ordering_falls_back_to_string(self):
        assert (Constant(1) < Constant("a")) in (True, False)


class TestHelpers:
    def test_is_variable_and_is_constant(self):
        assert is_variable(Variable("x")) and not is_variable(Constant(1))
        assert is_constant(Constant(1)) and not is_constant(Variable("x"))

    def test_variables_of(self):
        terms = [Variable("x"), Constant(1), Variable("y"), Variable("x")]
        assert variables_of(terms) == {Variable("x"), Variable("y")}

    def test_constants_of(self):
        terms = [Variable("x"), Constant(1), Constant("a")]
        assert constants_of(terms) == {Constant(1), Constant("a")}

    def test_make_term_string_is_variable(self):
        assert make_term("x") == Variable("x")

    def test_make_term_number_is_constant(self):
        assert make_term(5) == Constant(5)

    def test_make_term_passthrough(self):
        v = Variable("x")
        assert make_term(v) is v

    def test_make_constant_from_string(self):
        assert make_constant("Rome") == Constant("Rome")

    def test_make_constant_rejects_variable(self):
        with pytest.raises(TypeError):
            make_constant(Variable("x"))

    def test_fresh_variables_count_and_distinctness(self):
        fresh = fresh_variables("w", 4)
        assert len(fresh) == 4 and len(set(fresh)) == 4

    def test_fresh_variables_avoid_collisions(self):
        taken = [Variable("w0"), Variable("w1")]
        fresh = fresh_variables("w", 3, avoid=taken)
        assert not (set(fresh) & set(taken))
