"""Tests for repro.model.atoms: relation schemas, atoms, facts, key-equality."""

import pytest

from repro.model.atoms import Atom, Fact, RelationSchema, atoms_use_distinct_relations
from repro.model.symbols import Constant, Variable


@pytest.fixture
def schema_r():
    return RelationSchema("R", 3, 2)


class TestRelationSchema:
    def test_signature_accessors(self, schema_r):
        assert schema_r.arity == 3 and schema_r.key_size == 2
        assert list(schema_r.key_positions) == [0, 1]
        assert list(schema_r.nonkey_positions) == [2]

    def test_all_key(self):
        assert RelationSchema("S", 2, 2).is_all_key
        assert not RelationSchema("S", 3, 2).is_all_key

    def test_invalid_signatures_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", 2, 3)
        with pytest.raises(ValueError):
            RelationSchema("R", 2, 0)
        with pytest.raises(ValueError):
            RelationSchema("", 2, 1)

    def test_equality_and_hash(self):
        assert RelationSchema("R", 2, 1) == RelationSchema("R", 2, 1)
        assert RelationSchema("R", 2, 1) != RelationSchema("R", 2, 2)
        assert len({RelationSchema("R", 2, 1), RelationSchema("R", 2, 1)}) == 1

    def test_atom_builder_coerces_terms(self, schema_r):
        atom = schema_r.atom("x", 5, "y")
        assert atom.key_variables == {Variable("x")}
        assert Constant(5) in atom.constants

    def test_fact_builder(self, schema_r):
        fact = schema_r.fact("a", "b", 1)
        assert isinstance(fact, Fact)
        assert fact.values == ("a", "b", 1)


class TestAtom:
    def test_key_and_vars(self, schema_r):
        atom = schema_r.atom("x", "y", "z")
        assert atom.key_variables == {Variable("x"), Variable("y")}
        assert atom.variables == {Variable("x"), Variable("y"), Variable("z")}

    def test_arity_mismatch_rejected(self, schema_r):
        with pytest.raises(ValueError):
            Atom(schema_r, (Variable("x"), Variable("y")))

    def test_is_fact_property(self, schema_r):
        assert not schema_r.atom("x", "y", "z").is_fact
        assert schema_r.atom(1, 2, 3).is_fact

    def test_to_fact_requires_ground(self, schema_r):
        with pytest.raises(ValueError):
            schema_r.atom("x", 1, 2).to_fact()
        assert isinstance(schema_r.atom(1, 2, 3).to_fact(), Fact)

    def test_str_shows_key_separator(self, schema_r):
        assert str(schema_r.atom("x", "y", "z")) == "R(x, y | z)"

    def test_equality_ignores_fact_subclass(self, schema_r):
        assert schema_r.atom(1, 2, 3) == schema_r.fact(1, 2, 3)

    def test_rename_relation_same_signature(self, schema_r):
        other = RelationSchema("R2", 3, 2)
        renamed = schema_r.atom("x", "y", "z").rename_relation(other)
        assert renamed.name == "R2"

    def test_rename_relation_signature_mismatch(self, schema_r):
        with pytest.raises(ValueError):
            schema_r.atom("x", "y", "z").rename_relation(RelationSchema("R2", 4, 2))


class TestFact:
    def test_key_equal_same_block(self, schema_r):
        first = schema_r.fact("a", "b", 1)
        second = schema_r.fact("a", "b", 2)
        assert first.key_equal(second)
        assert first.block_key == second.block_key

    def test_key_equal_different_keys(self, schema_r):
        assert not schema_r.fact("a", "b", 1).key_equal(schema_r.fact("a", "c", 1))

    def test_key_equal_different_relations(self):
        r = RelationSchema("R", 2, 1)
        s = RelationSchema("S", 2, 1)
        assert not r.fact("a", 1).key_equal(s.fact("a", 1))

    def test_fact_rejects_variables(self, schema_r):
        with pytest.raises(ValueError):
            Fact(schema_r, (Variable("x"), Constant(1), Constant(2)))


class TestSelfJoinDetection:
    def test_distinct_relations(self):
        r = RelationSchema("R", 2, 1)
        s = RelationSchema("S", 2, 1)
        assert atoms_use_distinct_relations([r.atom("x", "y"), s.atom("y", "z")])

    def test_repeated_relation(self):
        r = RelationSchema("R", 2, 1)
        assert not atoms_use_distinct_relations([r.atom("x", "y"), r.atom("y", "z")])


class TestPickling:
    """Atoms must survive process boundaries with the hash/eq contract intact.

    The parallel engine ships facts to worker processes whose string-hash
    salt (PYTHONHASHSEED) differs from the parent's.  A pickled atom must
    therefore NOT carry its origin process's cached hash: it would compare
    equal to a locally built atom yet miss it in sets and dicts — which
    silently corrupted purification (and thus certainty verdicts) in
    workers before the `__getstate__`/`__setstate__` pair recomputed it.
    """

    def test_roundtrip_preserves_identity_in_this_process(self):
        import pickle

        R = RelationSchema("R", 2, 1)
        fact = R.fact("a", "b")
        atom = R.atom(Variable("x"), "b")
        fact2, atom2 = pickle.loads(pickle.dumps((fact, atom)))
        assert fact2 == fact and hash(fact2) == hash(fact)
        assert atom2 == atom and hash(atom2) == hash(atom)
        assert fact2 in {fact} and atom2 in {atom}
        assert isinstance(fact2, Fact)

    def test_cached_hash_is_not_pickled(self):
        R = RelationSchema("R", 2, 1)
        fact = R.fact("a", "b")
        assert fact.__getstate__() == (fact.relation, fact.terms)

    def test_unpickled_atoms_match_fresh_atoms_under_other_hash_seeds(self):
        """Set membership must hold in a worker with a different hash salt."""
        import os
        import pickle
        import subprocess
        import sys

        R = RelationSchema("R", 2, 1)
        blob = pickle.dumps((R.fact("a", "b"), R.atom(Variable("x"), "b")))
        probe = (
            "import pickle, sys\n"
            f"sys.path.insert(0, {os.path.abspath('src')!r})\n"
            "from repro.model.atoms import RelationSchema\n"
            "from repro.model.symbols import Variable\n"
            f"fact, atom = pickle.loads({blob!r})\n"
            "R = RelationSchema('R', 2, 1)\n"
            "assert fact in {R.fact('a', 'b')}\n"
            "assert atom in {R.atom(Variable('x'), 'b')}\n"
            "assert hash(fact) == hash(R.fact('a', 'b'))\n"
        )
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", probe],
                env={**os.environ, "PYTHONHASHSEED": hash_seed},
                capture_output=True,
                text=True,
            )
            assert result.returncode == 0, result.stderr
