"""Tests for the probabilistic-database bridge (Section 7): BID, IsSafe, Pr(q)."""

from fractions import Fraction

import pytest

from repro.counting import (
    certainty_from_counts,
    count_falsifying_repairs,
    count_satisfying_repairs,
    counting_summary,
    repair_frequency,
)
from repro.certainty import certain_brute_force
from repro.model import RelationSchema, UncertainDatabase
from repro.probability import (
    BIDDatabase,
    FrontierComparison,
    UnsafeQueryError,
    certainty_via_probability,
    compare_frontiers,
    frontier_comparison_table,
    is_safe,
    probability,
    probability_by_worlds,
    probability_safe_plan,
    proposition1_holds,
    safety_trace,
)
from repro.query import (
    ConjunctiveQuery,
    cycle_query_ac,
    figure2_q1,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
    parse_query,
)
from repro.workloads import figure1_database, figure1_query

from tests.helpers import random_instance

R = RelationSchema("R", 2, 1)


class TestBIDDatabase:
    def test_uniform_repairs_probabilities(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2), R.fact("b", 1)])
        bid = BIDDatabase.uniform_repairs(db)
        assert bid.probability(R.fact("a", 1)) == Fraction(1, 2)
        assert bid.probability(R.fact("b", 1)) == Fraction(1)

    def test_block_sum_validation(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        with pytest.raises(ValueError):
            BIDDatabase(db, {R.fact("a", 1): Fraction(3, 4), R.fact("a", 2): Fraction(1, 2)})

    def test_missing_probability_rejected(self):
        db = UncertainDatabase([R.fact("a", 1)])
        with pytest.raises(ValueError):
            BIDDatabase(db, {})

    def test_out_of_range_rejected(self):
        db = UncertainDatabase([R.fact("a", 1)])
        with pytest.raises(ValueError):
            BIDDatabase(db, {R.fact("a", 1): Fraction(3, 2)})

    def test_world_probabilities_sum_to_one(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2), R.fact("b", 1)])
        bid = BIDDatabase(
            db,
            {R.fact("a", 1): Fraction(1, 3), R.fact("a", 2): Fraction(1, 3), R.fact("b", 1): Fraction(1, 2)},
        )
        total = sum(probability for _, probability in bid.worlds())
        assert total == 1

    def test_uniform_repair_worlds_are_repairs(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        bid = BIDDatabase.uniform_repairs(db)
        worlds = list(bid.worlds())
        assert len(worlds) == 2
        assert all(probability == Fraction(1, 2) for _, probability in worlds)

    def test_restrict_to_certain_blocks(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2), R.fact("b", 1)])
        bid = BIDDatabase(
            db,
            {R.fact("a", 1): Fraction(1, 4), R.fact("a", 2): Fraction(1, 4), R.fact("b", 1): 1},
        )
        restricted = bid.restrict_to_certain_blocks()
        assert restricted.facts == frozenset({R.fact("b", 1)})

    def test_world_probability_requires_member_facts(self):
        db = UncertainDatabase([R.fact("a", 1)])
        bid = BIDDatabase.uniform_repairs(db)
        with pytest.raises(ValueError):
            bid.world_probability([R.fact("zzz", 9)])


class TestIsSafe:
    def test_single_atom_is_safe(self):
        assert is_safe(parse_query("Single(x | y)"))

    def test_all_key_single_atom_is_safe(self):
        assert is_safe(parse_query("AllKey(x, y)"))

    def test_ground_query_is_safe(self):
        assert is_safe(parse_query("G('a' | 'b'), H('c' | 'd')"))

    def test_q0_is_unsafe(self):
        assert not is_safe(kolaitis_pema_q0())

    def test_fm_query_is_unsafe(self):
        assert not is_safe(fuxman_miller_cfree_example())

    def test_q1_is_unsafe(self):
        assert not is_safe(figure2_q1())

    def test_disconnected_safe_components(self):
        assert is_safe(parse_query("A(x | y), B(u | v)"))

    def test_common_key_variable_makes_join_safe(self):
        assert is_safe(parse_query("A(x | y), B(x | z)"))

    def test_trace_records_rules(self):
        verdict, trace = safety_trace(parse_query("A(x | y), B(x | z)"))
        assert verdict and any(step.startswith("R3") or step.startswith("R2") for step in trace)

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            is_safe(parse_query("A(x | y), A(y | z)"))


class TestProbabilityEvaluation:
    def test_single_fact_probability(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        bid = BIDDatabase.uniform_repairs(db)
        q = ConjunctiveQuery([R.atom("x", "y")])
        assert probability_safe_plan(bid, q) == probability_by_worlds(bid, q) == 1

    def test_constant_selection_probability(self):
        from repro.model import Constant, Variable

        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        bid = BIDDatabase.uniform_repairs(db)
        q = ConjunctiveQuery([R.atom(Variable("x"), Constant(1))])
        assert probability_safe_plan(bid, q) == Fraction(1, 2)
        assert probability_by_worlds(bid, q) == Fraction(1, 2)

    @pytest.mark.parametrize(
        "text",
        ["Single(x | y)", "A(x | y), B(x | z)", "A(x | y), B(u | v)"],
        ids=["single-atom", "shared-key", "disconnected"],
    )
    def test_safe_plan_matches_world_enumeration(self, text, rng):
        query = parse_query(text)
        assert is_safe(query)
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            bid = BIDDatabase.uniform_repairs(db)
            assert probability_safe_plan(bid, query) == probability_by_worlds(bid, query)

    def test_unsafe_query_raises(self):
        db = UncertainDatabase([R.fact("a", 1)])
        bid = BIDDatabase.uniform_repairs(db)
        with pytest.raises(UnsafeQueryError):
            probability_safe_plan(bid, fuxman_miller_cfree_example())

    def test_probability_dispatcher_falls_back_to_worlds(self, rng):
        query = fuxman_miller_cfree_example()
        db = random_instance(query, rng, domain_size=2, facts_per_relation=3)
        bid = BIDDatabase.uniform_repairs(db)
        assert probability(bid, query) == probability_by_worlds(bid, query)

    def test_empty_query_has_probability_one(self):
        db = UncertainDatabase([R.fact("a", 1)])
        bid = BIDDatabase.uniform_repairs(db)
        assert probability(bid, ConjunctiveQuery([])) == 1


class TestBridge:
    def test_proposition1_on_figure1(self):
        bid = BIDDatabase.uniform_repairs(figure1_database())
        assert proposition1_holds(bid, figure1_query())

    def test_proposition1_random(self, rng):
        query = fuxman_miller_cfree_example()
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=3)
            assert proposition1_holds(BIDDatabase.uniform_repairs(db), query)

    def test_certainty_via_probability_uniform_repairs(self, rng):
        """With uniform repair probabilities, Pr(q)=1 ⇔ db ∈ CERTAINTY(q)."""
        query = fuxman_miller_cfree_example()
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=3)
            bid = BIDDatabase.uniform_repairs(db)
            assert certainty_via_probability(bid, query) == certain_brute_force(db, query)

    def test_theorem6_on_named_queries(self):
        comparisons = compare_frontiers(
            [parse_query("Single(x | y)"), fuxman_miller_cfree_example(), figure2_q1(), cycle_query_ac(2)]
        )
        assert all(c.consistent_with_theorem6 for c in comparisons)

    def test_comparison_table_renders(self):
        table = frontier_comparison_table(compare_frontiers([figure2_q1()]))
        assert "CONP_COMPLETE" in table and "unsafe" in table

    def test_frontier_comparison_flags(self):
        comparison = FrontierComparison(parse_query("Single(x | y)"))
        assert comparison.probability_tractable and comparison.certainty_fo


class TestCounting:
    def test_figure1_counts(self):
        db = figure1_database()
        q = figure1_query()
        assert count_satisfying_repairs(db, q) == 3
        assert count_falsifying_repairs(db, q) == 1
        assert repair_frequency(db, q) == Fraction(3, 4)
        assert not certainty_from_counts(db, q)

    def test_counting_summary(self):
        satisfying, total, frequency = counting_summary(figure1_database(), figure1_query())
        assert (satisfying, total, frequency) == (3, 4, Fraction(3, 4))

    def test_counts_consistent_with_certainty(self, rng):
        query = fuxman_miller_cfree_example()
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=3)
            assert certainty_from_counts(db, query) == certain_brute_force(db, query)

    def test_uniform_probability_equals_repair_frequency(self, rng):
        query = fuxman_miller_cfree_example()
        for _ in range(6):
            db = random_instance(query, rng, domain_size=2, facts_per_relation=3)
            bid = BIDDatabase.uniform_repairs(db)
            assert probability_by_worlds(bid, query) == repair_frequency(db, query)

    def test_empty_query_counts_all_repairs(self):
        db = figure1_database()
        assert count_satisfying_repairs(db, ConjunctiveQuery([])) == 4
