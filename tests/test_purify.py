"""Tests for Lemma 1 purification."""

import random


from repro.certainty import certain_brute_force, is_purified, purify, relevant_facts
from repro.model import RelationSchema, UncertainDatabase
from repro.query import ConjunctiveQuery, parse_query
from repro.workloads import figure6_database
from repro.query.families import cycle_query_ac

from tests.helpers import random_instance

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 2, 1)


class TestPurify:
    def test_example1_from_the_paper(self):
        """{R(a,b), S(b,a), S(b,c)} is not purified for {R(x|y), S(y|x)}."""
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("b", "c")]
        )
        assert not is_purified(db, q)
        purified = purify(db, q)
        assert is_purified(purified, q)

    def test_example1_removes_the_whole_block(self):
        """Purification removes block(S(b,c)) entirely, i.e. both S-facts."""
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("b", "c")]
        )
        purified = purify(db, q)
        assert schema["S"].fact("b", "c") not in purified
        assert schema["S"].fact("b", "a") not in purified

    def test_purified_database_unchanged(self):
        db = figure6_database()
        q = cycle_query_ac(3)
        assert is_purified(db, q)
        assert purify(db, q).facts == db.facts

    def test_empty_query_keeps_everything(self):
        db = UncertainDatabase([R.fact("a", 1)])
        q = ConjunctiveQuery([])
        assert purify(db, q).facts == db.facts

    def test_no_witness_empties_database(self):
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b")])
        assert len(purify(db, q)) == 0

    def test_relevant_facts_subset(self):
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("zzz", "q")]
        )
        relevant = relevant_facts(db, q)
        assert schema["R"].fact("a", "b") in relevant
        assert schema["S"].fact("zzz", "q") not in relevant

    def test_purify_is_idempotent(self, rng):
        q = parse_query("A(x | y), B(y | x)")
        for _ in range(10):
            db = random_instance(q, rng, domain_size=3, facts_per_relation=5)
            once = purify(db, q)
            assert purify(once, q).facts == once.facts

    def test_purify_preserves_certainty(self, rng):
        """Lemma 1: db ∈ CERTAINTY(q) ⇔ purify(db, q) ∈ CERTAINTY(q)."""
        q = parse_query("A(x | y), B(y | x)")
        for _ in range(15):
            db = random_instance(q, rng, domain_size=3, facts_per_relation=5)
            assert certain_brute_force(db, q) == certain_brute_force(purify(db, q), q)

    def test_purify_does_not_mutate_input(self):
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b")])
        purify(db, q)
        assert len(db) == 1


class TestPurifyFastPath:
    """The hot-path contract: zero copies on already-purified inputs."""

    def test_purified_input_returns_the_same_object(self):
        from repro.certainty import purify_copy_count, reset_purify_copy_count

        db = figure6_database()
        q = cycle_query_ac(3)
        assert is_purified(db, q)
        reset_purify_copy_count()
        result = purify(db, q)
        assert result is db  # no copy at all: the input is returned unchanged
        assert purify_copy_count() == 0

    def test_empty_query_takes_the_fast_path(self):
        from repro.certainty import purify_copy_count, reset_purify_copy_count

        db = UncertainDatabase([R.fact("a", 1)])
        reset_purify_copy_count()
        assert purify(db, ConjunctiveQuery([])) is db
        assert purify_copy_count() == 0

    def test_impure_input_copies_exactly_once(self):
        from repro.certainty import purify_copy_count, reset_purify_copy_count

        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("b", "c")]
        )
        reset_purify_copy_count()
        purified = purify(db, q)
        assert purify_copy_count() == 1  # one lazy copy, however many sweeps ran
        assert purified is not db
        assert len(db) == 3  # input untouched

    def test_caller_supplied_index_is_never_mutated(self):
        from repro.query.evaluation import FactIndex

        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("b", "c")]
        )
        index = FactIndex(db.facts)
        purified = purify(db, q, index=index)
        assert len(purified) < len(db)
        # The shared index still covers exactly the original facts.
        assert set(index) == set(db.facts)
        assert len(index) == len(db)

    def test_cascading_sweeps_with_shared_index(self, rng):
        """Multi-sweep removals agree with the no-index result."""
        from repro.query.evaluation import FactIndex

        q = parse_query("A(x | y), B(y | z), C(z | x)")
        for seed in range(10):
            db = random_instance(q, random.Random(seed), domain_size=3, facts_per_relation=4)
            index = FactIndex(db.facts)
            with_index = purify(db, q, index=index)
            without_index = purify(db, q)
            assert with_index.facts == without_index.facts
            assert set(index) == set(db.facts)

    def test_returned_copy_tracks_no_hidden_observer(self):
        """Mutating purify's result must not corrupt later purify calls."""
        q = parse_query("R(x | y), S(y | x)")
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["S"].fact("b", "a"), schema["S"].fact("b", "c")]
        )
        purified = purify(db, q)
        purified.add(schema["R"].fact("zz", "qq"))  # must not raise
        again = purify(purified, q)
        assert schema["R"].fact("zz", "qq") not in again
