"""Tests for repro.query.families: the paper's canonical queries."""

import pytest

from repro.model.symbols import Variable
from repro.query import (
    all_named_queries,
    cycle_query_ac,
    cycle_query_c,
    cycle_query_shape,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
    parse_query,
    path_query,
    star_query,
    two_atom_query,
)


class TestNamedQueries:
    def test_q0_signatures(self):
        q0 = kolaitis_pema_q0()
        atoms = {a.name: a for a in q0.atoms}
        assert (atoms["R0"].relation.arity, atoms["R0"].relation.key_size) == (2, 1)
        assert (atoms["S0"].relation.arity, atoms["S0"].relation.key_size) == (3, 2)

    def test_q1_has_four_atoms_and_a_constant(self):
        q1 = figure2_q1()
        assert len(q1) == 4 and len(q1.constants) == 1

    def test_figure4_variants(self):
        assert len(figure4_query()) == 7
        assert len(figure4_query(include_r0=False)) == 6

    def test_no_self_joins_in_named_queries(self):
        for query in all_named_queries():
            assert not query.has_self_join

    def test_fm_example_two_atoms(self):
        assert len(fuxman_miller_cfree_example()) == 2


class TestCycleQueries:
    def test_ck_structure(self):
        q = cycle_query_c(4)
        assert len(q) == 4
        assert all(a.relation.arity == 2 and a.relation.key_size == 1 for a in q)
        assert len(q.variables) == 4

    def test_ack_adds_all_key_atom(self):
        q = cycle_query_ac(3)
        assert len(q) == 4
        sk = q.atom_with_relation("S3")
        assert sk.relation.is_all_key and sk.relation.arity == 3

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            cycle_query_c(1)
        with pytest.raises(ValueError):
            cycle_query_ac(1)


class TestCycleQueryShape:
    def test_detects_ck(self):
        shape = cycle_query_shape(cycle_query_c(3))
        assert shape is not None and shape.k == 3 and not shape.has_sk_atom

    def test_detects_ack(self):
        shape = cycle_query_shape(cycle_query_ac(4))
        assert shape is not None and shape.k == 4 and shape.has_sk_atom

    def test_detects_renamed_variant(self):
        q = parse_query("E1(a | b), E2(b | a)")
        shape = cycle_query_shape(q)
        assert shape is not None and shape.k == 2

    def test_ring_atom_order_follows_cycle(self):
        shape = cycle_query_shape(cycle_query_c(3))
        variables = shape.variables
        for position, atom in enumerate(shape.ring_atoms):
            assert atom.terms[0] == variables[position]
            assert atom.terms[1] == variables[(position + 1) % 3]

    def test_rejects_non_cycle(self):
        assert cycle_query_shape(parse_query("R(x | y), S(y | z)")) is None
        assert cycle_query_shape(figure2_q1()) is None
        assert cycle_query_shape(fuxman_miller_cfree_example()) is None

    def test_rejects_sk_with_wrong_order(self):
        q = parse_query("R1(x | y), R2(y | x), S2(y, x)")
        # S2 lists the variables in a valid rotation (y, x), so this *is* AC(2).
        assert cycle_query_shape(q) is not None
        q_bad = parse_query("R1(x | y), R2(y | z), R3(z | x), S3(x, z, y)")
        assert cycle_query_shape(q_bad) is None


class TestParametricFamilies:
    def test_path_query(self):
        q = path_query(3)
        assert len(q) == 3 and len(q.variables) == 4

    def test_star_query(self):
        q = star_query(4)
        assert len(q) == 4 and Variable("c") in q.variables

    def test_two_atom_query_builder(self):
        q = two_atom_query(["x"], ["y"], ["y"], ["x"])
        assert len(q) == 2
        assert {a.relation.key_size for a in q} == {1}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            path_query(0)
        with pytest.raises(ValueError):
            star_query(0)
