"""Tests for the top-level dispatcher (solve / is_certain / certain_answers)."""

import pytest

from repro.certainty import (
    IntractableQueryError,
    UnsupportedQueryError,
    certain_answers,
    certain_brute_force,
    is_certain,
    solve,
)
from repro.core import ComplexityBand
from repro.model import Constant
from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    parse_query,
)
from repro.workloads import figure1_database, figure1_query, figure6_database

from tests.helpers import random_instance


class TestDispatch:
    def test_fo_band_uses_rewriting(self):
        outcome = solve(figure1_database(), figure1_query())
        assert outcome.method == "fo-rewriting"
        assert outcome.classification.band is ComplexityBand.FO
        assert not outcome.certain

    def test_terminal_cycles_band(self, rng):
        query = cycle_query_c(2)
        db = random_instance(query, rng)
        outcome = solve(db, query)
        assert outcome.method == "theorem3-terminal-cycles"

    def test_cycle_query_band(self):
        outcome = solve(figure6_database(), cycle_query_ac(3))
        assert outcome.method == "theorem4-cycle-query"
        assert not outcome.certain

    def test_conp_requires_opt_in(self, rng):
        query = figure2_q1()
        db = random_instance(query, rng, facts_per_relation=3)
        with pytest.raises(IntractableQueryError):
            solve(db, query)
        outcome = solve(db, query, allow_exponential=True)
        assert outcome.method == "brute-force"
        assert outcome.certain == certain_brute_force(db, query)

    def test_unsupported_requires_opt_in(self, rng):
        query = parse_query("R(x | y, w), S(y | z, w), T(z | x, w)")
        db = random_instance(query, rng, facts_per_relation=3)
        with pytest.raises(UnsupportedQueryError):
            solve(db, query)
        assert solve(db, query, allow_exponential=True).certain == certain_brute_force(db, query)

    def test_is_certain_boolean_wrapper(self, rng):
        query = fuxman_miller_cfree_example()
        db = random_instance(query, rng)
        assert is_certain(db, query) == certain_brute_force(db, query)

    def test_outcome_bool_protocol(self, rng):
        query = fuxman_miller_cfree_example()
        db = random_instance(query, rng)
        outcome = solve(db, query)
        assert bool(outcome) == outcome.certain

    @pytest.mark.parametrize(
        "query",
        [fuxman_miller_cfree_example(), cycle_query_c(2), cycle_query_ac(2), figure4_query(include_r0=False)],
        ids=lambda q: str(q)[:30],
    )
    def test_polynomial_paths_agree_with_oracle(self, query, rng):
        for _ in range(10):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            assert is_certain(db, query) == certain_brute_force(db, query)


class TestCertainAnswers:
    def test_figure1_open_query(self):
        """Which conferences certainly host in Rome?  None, but KDD is a certain
        answer of 'which conferences have rank A and host somewhere'."""
        db = figure1_database()
        rome_query = parse_query("C(x, y | 'Rome'), R(x | 'A')", free=["x"])
        assert certain_answers(db, rome_query) == set()

        rank_query = parse_query("R(x | 'A')", free=["x"])
        answers = certain_answers(db, rank_query)
        assert answers == {(Constant("PODS"),)}

    def test_certain_answers_subset_of_possible_answers(self, rng):
        query = parse_query("A(x | y), B(y | z)", free=["x"])
        from repro.query import answer_tuples

        for _ in range(10):
            db = random_instance(query.as_boolean(), rng, domain_size=3, facts_per_relation=4)
            certain = certain_answers(db, query)
            possible = answer_tuples(query, db.facts)
            assert certain <= possible

    def test_certain_answers_match_brute_force_groundings(self, rng):
        from repro.query.substitution import ground_free_variables
        from repro.query import answer_tuples

        query = parse_query("A(x | y), B(y | z)", free=["x"])
        for _ in range(8):
            db = random_instance(query.as_boolean(), rng, domain_size=3, facts_per_relation=4)
            computed = certain_answers(db, query)
            expected = set()
            for candidate in answer_tuples(query, db.facts):
                grounded = ground_free_variables(query, [c.value for c in candidate])
                if certain_brute_force(db, grounded):
                    expected.add(candidate)
            assert computed == expected

    def test_certain_answers_requires_free_variables(self):
        with pytest.raises(ValueError):
            certain_answers(figure1_database(), figure1_query())
