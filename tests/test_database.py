"""Tests for repro.model.database and repro.model.schema."""

import pytest

from repro.model.atoms import RelationSchema
from repro.model.database import UncertainDatabase
from repro.model.schema import DatabaseSchema
from repro.model.symbols import Constant

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 3, 2)


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema([R])
        assert schema["R"] is R
        assert "R" in schema and "S" not in schema

    def test_conflicting_signature_rejected(self):
        schema = DatabaseSchema([R])
        with pytest.raises(ValueError):
            schema.add(RelationSchema("R", 3, 1))

    def test_relation_creates_on_demand(self):
        schema = DatabaseSchema()
        created = schema.relation("T", 2, 1)
        assert created.arity == 2 and "T" in schema

    def test_relation_unknown_without_arity(self):
        with pytest.raises(KeyError):
            DatabaseSchema().relation("T")

    def test_from_atoms(self):
        schema = DatabaseSchema.from_atoms([R.atom("x", "y"), S.atom("x", "y", "z")])
        assert set(schema.names()) == {"R", "S"}


class TestUncertainDatabase:
    def test_add_and_contains(self):
        db = UncertainDatabase([R.fact("a", 1)])
        assert R.fact("a", 1) in db and len(db) == 1

    def test_add_is_idempotent(self):
        db = UncertainDatabase()
        db.add(R.fact("a", 1))
        db.add(R.fact("a", 1))
        assert len(db) == 1

    def test_blocks_group_key_equal_facts(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2), R.fact("b", 1)])
        assert db.num_blocks() == 2
        block_sizes = sorted(len(b) for b in db.blocks())
        assert block_sizes == [1, 2]

    def test_block_of(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        assert db.block_of(R.fact("a", 1)) == {R.fact("a", 1), R.fact("a", 2)}

    def test_block_of_missing_fact_raises(self):
        db = UncertainDatabase([R.fact("a", 1)])
        with pytest.raises(KeyError):
            db.block_of(R.fact("z", 9))

    def test_consistency(self):
        assert UncertainDatabase([R.fact("a", 1), R.fact("b", 1)]).is_consistent()
        assert not UncertainDatabase([R.fact("a", 1), R.fact("a", 2)]).is_consistent()

    def test_conflicting_blocks(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2), R.fact("b", 1)])
        conflicting = db.conflicting_blocks()
        assert len(conflicting) == 1 and len(conflicting[0]) == 2

    def test_active_domain(self):
        db = UncertainDatabase([R.fact("a", 1)])
        assert db.active_domain() == {Constant("a"), Constant(1)}

    def test_discard_and_remove_block(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        db.discard(R.fact("a", 1))
        assert len(db) == 1
        db.remove_block(("R", (Constant("a"),)))
        assert len(db) == 0

    def test_relation_facts(self):
        db = UncertainDatabase([R.fact("a", 1), S.fact("a", "b", 1)])
        assert db.relation_facts("R") == {R.fact("a", 1)}

    def test_restrict_to_relations(self):
        db = UncertainDatabase([R.fact("a", 1), S.fact("a", "b", 1)])
        restricted = db.restrict_to_relations(["S"])
        assert len(restricted) == 1 and S.fact("a", "b", 1) in restricted

    def test_copy_is_independent(self):
        db = UncertainDatabase([R.fact("a", 1)])
        clone = db.copy()
        clone.add(R.fact("b", 2))
        assert len(db) == 1 and len(clone) == 2

    def test_union(self):
        first = UncertainDatabase([R.fact("a", 1)])
        second = UncertainDatabase([R.fact("b", 2)])
        assert len(first.union(second)) == 2

    def test_equality_is_by_facts(self):
        assert UncertainDatabase([R.fact("a", 1)]) == UncertainDatabase([R.fact("a", 1)])

    def test_schema_collects_relations(self):
        db = UncertainDatabase([R.fact("a", 1), S.fact("a", "b", 1)])
        assert set(db.schema.names()) == {"R", "S"}

    def test_pretty_renders_blocks(self):
        db = UncertainDatabase([R.fact("a", 1), R.fact("a", 2)])
        rendered = db.pretty()
        assert "R:" in rendered and "|" in rendered

    def test_rejects_non_fact(self):
        db = UncertainDatabase()
        with pytest.raises(TypeError):
            db.add(R.atom("x", "y"))
