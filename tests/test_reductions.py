"""Tests for the Theorem 2 reduction machinery."""

import pytest

from repro.certainty import (
    Theorem2Reduction,
    UnsupportedQueryError,
    certain_brute_force,
    purify,
    theorem2_reduction,
)
from repro.model import Constant, UncertainDatabase
from repro.query import figure2_q1, fuxman_miller_cfree_example, kolaitis_pema_q0, parse_query

from tests.helpers import random_instance


class TestConstruction:
    def test_requires_strong_cycle(self):
        with pytest.raises(UnsupportedQueryError):
            Theorem2Reduction(fuxman_miller_cfree_example())

    def test_requires_self_join_free(self):
        with pytest.raises(UnsupportedQueryError):
            Theorem2Reduction(parse_query("R(x | y), R(y | x)"))

    def test_strong_pair_identified_for_q1(self):
        reduction = Theorem2Reduction(figure2_q1())
        assert reduction.attacker.name == "S" and reduction.attacked.name == "R"

    def test_hat_valuation_covers_all_variables(self):
        reduction = Theorem2Reduction(figure2_q1())
        valuation = reduction.hat_valuation(Constant(1), Constant(2), Constant(3))
        assert valuation.domain() == reduction.query.variables

    def test_hat_value_regions(self):
        """Spot-check the six Venn regions for q1.

        The strong attack of q1 is S ⤳ R, so in the paper's notation F = S
        (the attacker) and G = R (the attacked atom): F+ = {y}, G+ = {u},
        F⊞ = {x, y, z}.  Hence ``u ∈ G+ \\ F⊞ ↦ ⟨y, z⟩``, ``y ∈ F+ \\ G+ ↦ x``,
        and ``x, z ∈ F⊞ \\ (F+ ∪ G+) ↦ ⟨x, y⟩``.
        """
        reduction = Theorem2Reduction(figure2_q1())
        x, y, z = Constant("X"), Constant("Y"), Constant("Z")
        hat = {v.name: reduction.hat_value(v, x, y, z) for v in reduction.query.variables}
        assert hat["u"] == Constant(("Y", "Z"))
        assert hat["y"] == x
        assert hat["x"] == Constant(("X", "Y"))
        assert hat["z"] == Constant(("X", "Y"))


class TestReductionCorrectness:
    def test_preserves_certainty_on_random_instances(self, rng):
        q0 = kolaitis_pema_q0()
        target = figure2_q1()
        reduction = Theorem2Reduction(target)
        for _ in range(12):
            db0 = random_instance(q0, rng, domain_size=3, facts_per_relation=4)
            transformed = reduction.transform(db0)
            source = certain_brute_force(purify(db0, q0), q0)
            image = certain_brute_force(transformed, target)
            assert source == image

    def test_preserves_certainty_on_other_strong_cycle_query(self, rng):
        q0 = kolaitis_pema_q0()
        target = kolaitis_pema_q0()  # q0 itself has a strong cycle
        for _ in range(8):
            db0 = random_instance(q0, rng, domain_size=3, facts_per_relation=4)
            transformed = theorem2_reduction(target, db0)
            assert certain_brute_force(purify(db0, q0), q0) == certain_brute_force(transformed, target)

    def test_output_size_polynomial(self, rng):
        target = figure2_q1()
        q0 = kolaitis_pema_q0()
        for _ in range(5):
            db0 = random_instance(q0, rng, domain_size=3, facts_per_relation=5)
            transformed = theorem2_reduction(target, db0)
            # At most one fact per (atom, witness valuation) pair.
            assert len(transformed) <= len(target) * (len(db0) ** 2)

    def test_empty_source_maps_to_empty_target(self):
        transformed = theorem2_reduction(figure2_q1(), UncertainDatabase())
        assert len(transformed) == 0
