"""Tests for repro.model.repairs: enumeration, counting, possible worlds."""

import random

import pytest

from repro.model.atoms import RelationSchema
from repro.model.database import UncertainDatabase
from repro.model.repairs import (
    count_possible_worlds,
    count_repairs,
    enumerate_possible_worlds,
    enumerate_repairs,
    every_repair_satisfies,
    falsifying_repair,
    greedy_repair,
    is_possible_world,
    is_repair,
    random_repair,
    some_repair_satisfies,
)

R = RelationSchema("R", 2, 1)
S = RelationSchema("S", 2, 1)


@pytest.fixture
def conflicted_db():
    return UncertainDatabase(
        [R.fact("a", 1), R.fact("a", 2), R.fact("b", 1), S.fact("x", 1), S.fact("x", 2)]
    )


class TestCounting:
    def test_count_repairs_is_product_of_block_sizes(self, conflicted_db):
        assert count_repairs(conflicted_db) == 2 * 1 * 2

    def test_count_repairs_empty_db(self):
        assert count_repairs(UncertainDatabase()) == 1

    def test_count_possible_worlds(self, conflicted_db):
        assert count_possible_worlds(conflicted_db) == 3 * 2 * 3

    def test_enumeration_matches_count(self, conflicted_db):
        assert len(list(enumerate_repairs(conflicted_db))) == count_repairs(conflicted_db)
        assert len(list(enumerate_possible_worlds(conflicted_db))) == count_possible_worlds(conflicted_db)


class TestRepairProperties:
    def test_each_repair_is_a_repair(self, conflicted_db):
        for repair in enumerate_repairs(conflicted_db):
            assert is_repair(conflicted_db, repair)

    def test_repairs_pick_one_fact_per_block(self, conflicted_db):
        for repair in enumerate_repairs(conflicted_db):
            assert len(repair) == conflicted_db.num_blocks()

    def test_repairs_are_distinct(self, conflicted_db):
        repairs = list(enumerate_repairs(conflicted_db))
        assert len(set(repairs)) == len(repairs)

    def test_empty_db_has_single_empty_repair(self):
        assert list(enumerate_repairs(UncertainDatabase())) == [frozenset()]

    def test_is_repair_rejects_subset_missing_block(self, conflicted_db):
        assert not is_repair(conflicted_db, [R.fact("a", 1)])

    def test_is_repair_rejects_key_conflict(self, conflicted_db):
        candidate = [R.fact("a", 1), R.fact("a", 2), R.fact("b", 1), S.fact("x", 1)]
        assert not is_repair(conflicted_db, candidate)

    def test_is_repair_rejects_foreign_fact(self, conflicted_db):
        candidate = [R.fact("zzz", 9), R.fact("b", 1), S.fact("x", 1)]
        assert not is_repair(conflicted_db, candidate)

    def test_possible_world_need_not_be_maximal(self, conflicted_db):
        assert is_possible_world(conflicted_db, [R.fact("a", 1)])
        assert is_possible_world(conflicted_db, [])
        assert not is_possible_world(conflicted_db, [R.fact("a", 1), R.fact("a", 2)])

    def test_every_repair_is_a_possible_world(self, conflicted_db):
        for repair in enumerate_repairs(conflicted_db):
            assert is_possible_world(conflicted_db, repair)


class TestSamplingAndPredicates:
    def test_random_repair_is_valid(self, conflicted_db):
        rng = random.Random(1)
        for _ in range(10):
            assert is_repair(conflicted_db, random_repair(conflicted_db, rng))

    def test_greedy_repair_prefers_high_score(self, conflicted_db):
        repair = greedy_repair(conflicted_db, prefer=lambda f: f.values[1])
        assert R.fact("a", 2) in repair and S.fact("x", 2) in repair

    def test_every_and_some_repair_satisfies(self, conflicted_db):
        assert every_repair_satisfies(conflicted_db, lambda r: len(r) == 3)
        assert some_repair_satisfies(conflicted_db, lambda r: R.fact("a", 1) in r)
        assert not every_repair_satisfies(conflicted_db, lambda r: R.fact("a", 1) in r)

    def test_falsifying_repair_found(self, conflicted_db):
        witness = falsifying_repair(conflicted_db, lambda r: R.fact("a", 1) in r)
        assert witness is not None and R.fact("a", 1) not in witness

    def test_falsifying_repair_none_when_always_true(self, conflicted_db):
        assert falsifying_repair(conflicted_db, lambda r: True) is None
