"""Tests for the workload generators, paper instances, and experiment harness."""

import pytest

from repro.certainty import certain_brute_force, is_certain, is_purified
from repro.core import ComplexityBand, classify
from repro.experiments import ALL_EXPERIMENTS, ExperimentReport, run_all_experiments
from repro.model.repairs import is_repair
from repro.query import cycle_query_ac, fuxman_miller_cfree_example, is_acyclic, satisfies
from repro.workloads import (
    figure1_database,
    figure6_database,
    figure7_falsifying_repairs,
    mixed_corpus,
    named_corpus,
    planted_certain_instance,
    random_acyclic_query,
    random_corpus,
    ring_instance,
    scaling_instances,
    synthetic_instance,
    uniform_random_instance,
)


class TestGenerators:
    def test_synthetic_instance_deterministic(self):
        query = fuxman_miller_cfree_example()
        first = synthetic_instance(query, seed=3)
        second = synthetic_instance(query, seed=3)
        assert first.facts == second.facts

    def test_synthetic_instance_covers_all_relations(self):
        query = fuxman_miller_cfree_example()
        db = synthetic_instance(query, seed=1)
        for atom in query.atoms:
            assert db.relation_facts(atom.relation.name)

    def test_conflict_rate_creates_conflicts(self):
        query = fuxman_miller_cfree_example()
        db = synthetic_instance(query, seed=2, conflict_rate=1.0, witnesses=5, noise_per_relation=5)
        assert db.conflicting_blocks()

    def test_planted_certain_instance_is_certain(self):
        query = fuxman_miller_cfree_example()
        for seed in range(5):
            db = planted_certain_instance(query, seed=seed)
            assert certain_brute_force(db, query)
            assert is_certain(db, query)

    def test_uniform_random_instance_size(self):
        query = fuxman_miller_cfree_example()
        db = uniform_random_instance(query, seed=0, facts_per_relation=6)
        assert len(db) <= 12 and len(db) >= 2

    def test_scaling_instances_grow(self):
        query = fuxman_miller_cfree_example()
        instances = scaling_instances(query, sizes=[2, 6, 12], seed=0)
        sizes = [len(db) for _, db in instances]
        assert sizes[0] < sizes[-1]


class TestPaperInstances:
    def test_figure1_database_shape(self):
        db = figure1_database()
        assert len(db) == 6 and db.num_blocks() == 4
        assert len(db.conflicting_blocks()) == 2

    def test_figure6_is_purified_and_not_certain(self):
        db = figure6_database()
        query = cycle_query_ac(3)
        assert is_purified(db, query)
        assert not certain_brute_force(db, query)

    def test_figure7_repairs(self):
        db = figure6_database()
        query = cycle_query_ac(3)
        repairs = figure7_falsifying_repairs()
        assert len(repairs) == 2
        for repair in repairs:
            assert is_repair(db, repair)
            assert not satisfies(repair, query)

    def test_ring_instance_matches_oracle(self):
        for with_sk in (True, False):
            query, db = ring_instance(3, copies=2, chords=1, seed=4, with_sk=with_sk)
            assert is_certain(db, query) == certain_brute_force(db, query)


class TestCorpora:
    def test_random_acyclic_query_is_acyclic_and_self_join_free(self):
        for seed in range(20):
            query = random_acyclic_query(seed=seed, atoms=4)
            assert not query.has_self_join
            assert is_acyclic(query)

    def test_random_corpus_size_and_determinism(self):
        first = random_corpus(10, seed=5)
        second = random_corpus(10, seed=5)
        assert len(first) == 10 and first == second

    def test_named_corpus_contains_paper_queries(self):
        names = {tuple(sorted(q.relation_names)) for q in named_corpus()}
        assert any("S3" in relations for relations in names)

    def test_mixed_corpus_classifiable(self):
        corpus = mixed_corpus(10, seed=3)
        bands = {classify(q).band for q in corpus}
        assert ComplexityBand.FO in bands


class TestExperiments:
    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS), ids=sorted(ALL_EXPERIMENTS))
    def test_each_experiment_passes_its_checks(self, experiment_id):
        report = ALL_EXPERIMENTS[experiment_id]()
        assert isinstance(report, ExperimentReport)
        failed = [check.claim for check in report.checks if not check.holds]
        assert not failed, f"{experiment_id} failed checks: {failed}"

    def test_reports_render(self):
        report = ALL_EXPERIMENTS["E1"]()
        rendered = report.render()
        assert "E1" in rendered and "PASS" in rendered

    def test_run_all_experiments_returns_twelve_reports(self):
        reports = run_all_experiments()
        assert len(reports) == 12
        assert all(report.all_checks_pass for report in reports)
