"""Quickstart: model an uncertain database, classify a query, answer it certainly.

Run with:  python examples/quickstart.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import (
    CertaintySession,
    ParallelCertaintySession,
    ShardedCertaintySession,
    UncertainDatabase,
    ViewManager,
    certain_answers,
    certain_rewriting,
    classify,
    is_certain,
    parse_facts,
    parse_query,
)


def main() -> None:
    # An employee directory where primary keys may be violated: each employee
    # (key: name) should have one department, each department (key: dept) one
    # city — but ingestion produced conflicting rows.
    query = parse_query("Emp(name | dept), Dept(dept | city)")
    schema = query.schema()
    db = UncertainDatabase(
        parse_facts(
            [
                "Emp('ada' | 'db')",
                "Emp('bob' | 'os')",
                "Emp('bob' | 'net')",      # conflicting department for bob
                "Dept('db' | 'Mons')",
                "Dept('os' | 'Mons')",
                "Dept('net' | 'Paris')",
                "Dept('net' | 'Lille')",   # conflicting city for net
            ],
            schema=schema,
        )
    )
    print("uncertain database:")
    print(db.pretty())
    print(f"\nblocks: {db.num_blocks()}, conflicting blocks: {len(db.conflicting_blocks())}")

    # 1. Where does the Boolean query sit on the tractability frontier?
    classification = classify(query)
    print("\nclassification of the Boolean query:")
    print(classification.explain())

    # 2. Is it certain that *some* employee works in a located department?
    print("\nCERTAINTY(q):", is_certain(db, query))

    # 3. Certain answers of the open query "which employees certainly work in
    #    a department located in Mons?"
    open_query = parse_query("Emp(name | dept), Dept(dept | 'Mons')", free=["name"], schema=schema)
    answers = certain_answers(db, open_query)
    names = sorted(value.value for (value,) in answers)
    print("employees certainly located in Mons:", names)

    # 4. Serving repeated queries: a CertaintySession compiles each query
    #    once (classification + solver dispatch, cached in an LRU plan
    #    cache) and keeps a fact index that is updated incrementally as the
    #    database mutates — no re-classification or re-indexing per call.
    with CertaintySession(db) as session:
        print("\nsession CERTAINTY(q):", session.is_certain(query))
        # Ingest a correction: bob's department conflict is resolved.
        db.discard(schema["Emp"].fact("bob", "net"))
        answers = session.certain_answers(open_query)
        names = sorted(value.value for (value,) in answers)
        print("after resolving bob's conflict, certainly in Mons:", names)
        print("plan cache:", session.plan_cache.stats)

        # 5. Theorem 1, operationally: our query's attack graph is acyclic,
        #    so CERTAINTY(q) has a *certain first-order rewriting* — and the
        #    engine executes exactly that.  The rewriting is compiled once
        #    into a guarded set-at-a-time relational plan (atom scans over
        #    the session's fact index, joins, projections and anti-joins —
        #    never a walk over the whole active domain) and evaluated like
        #    any ordinary query.
        outcome = session.solve(query)
        print("\nsolver method:", outcome.method)             # fo-rewriting
        formula = certain_rewriting(query)
        print("certain FO rewriting:", formula)
        print("db |= rewriting:", session.evaluate_formula(formula))

    # 6. Scaling out: the candidate groundings of certain_answers are
    #    independent CERTAINTY instances, so a ParallelCertaintySession
    #    shards them across a process pool.  Each worker receives one
    #    immutable snapshot of the database (facts are immutable, so the
    #    snapshot is exact) and decides its chunk with the ordinary
    #    sequential machinery — the answer set is guaranteed identical.
    #    Small inputs skip the pool automatically; mutations between calls
    #    are detected and trigger a fresh snapshot.
    with ParallelCertaintySession(db, max_workers=4) as parallel_session:
        parallel_answers = parallel_session.certain_answers(open_query)
        names = sorted(value.value for (value,) in parallel_answers)
        print("\nparallel certain answers (4 workers):", names)
        print("identical to the sequential set:", parallel_answers == answers)
        # One-shot equivalent: certain_answers_parallel(db, open_query).

    # 7. Keeping certain answers fresh: under mutation-heavy traffic,
    #    recomputing certain_answers per write wastes almost all of its
    #    work.  A ViewManager materializes the answer set once, records
    #    which *blocks* each candidate's compiled rewriting actually read
    #    (its support), and on every mutation re-decides only the
    #    candidates whose support was touched — everything else provably
    #    cannot have changed.  Batches coalesce into one maintenance step,
    #    and subscribers receive answer-level deltas.
    with ViewManager(db) as manager:
        view = manager.register(open_query)
        view.subscribe(
            on_insert=lambda t: print("  + now certainly in Mons:", t[0].value),
            on_retract=lambda t: print("  - no longer certain:", t[0].value),
        )
        print("\nmaterialized view:", sorted(v.value for (v,) in view.answers))
        with db.batch():  # one consolidated refresh for the whole batch
            db.add(schema["Emp"].fact("eve", "db"))
            db.add(schema["Dept"].fact("net", "Lille"))
        print("after the batch:", sorted(v.value for (v,) in view.answers))
        print("maintenance stats:", view.stats)
        print("matches a cold recompute:",
              view.answers == frozenset(certain_answers(db, open_query)))

    # 8. The columnar store: under the hood, every session above ran on the
    #    interned columnar backend.  Constants are interned once into dense
    #    integer ids (a process-wide append-only table), each relation is
    #    stored as integer columns with per-block id slices, and every hot
    #    kernel — compiled-rewriting joins and anti-joins, candidate
    #    enumeration, purify sweeps, batched deciding — runs on tuples of
    #    small ints instead of Constant objects (5-10x on batched
    #    certain_answers; see BENCH_columnar_store.json).  Read sets shrink
    #    to dense block ids, and parallel workers receive flat id arrays
    #    plus raw values instead of pickled fact graphs.  The object-level
    #    path remains the differential reference: pass backend="object" to
    #    CertaintySession/ViewManager to run on plain fact dictionaries —
    #    answers are guaranteed identical.
    with CertaintySession(db) as session:              # backend="columnar"
        store = session.store
        print("\ncolumnar store:", store)
        print("store memory:", store.memory_stats())
        snapshot = store.snapshot()
        print("worker snapshot:", snapshot)
        with CertaintySession(db, backend="object") as reference:
            print("backends agree:",
                  session.certain_answers(open_query)
                  == reference.certain_answers(open_query))

    # 9. Every band on the id kernels: the columnar backend is not limited
    #    to the FO band.  The Theorem 3 terminal-cycle recursion, the
    #    Theorem 4 cycle-query solver and the coNP brute-force repair
    #    search all dispatch to id-space twins when the session index is
    #    columnar — partitioning, pair-purification, fact-graph
    #    construction and the pruned repair search run on integer rows,
    #    and purification threads columnar indexes through arbitrarily
    #    deep residual recursions.  Every solver also records *static*
    #    per-atom support (blocks, key masks, or whole relations), so
    #    materialized views stay fine-grained on every band: a mutation
    #    outside a decision's support never forces a band-opaque full
    #    refresh.  Sessions additionally memoise candidate enumeration,
    #    keyed on the database's mutation_version — a counter that bumps
    #    on every effective mutation (once per batch), giving a one-int
    #    staleness check.  BENCH_all_bands.json records the per-band
    #    speedups, with in-run identity checks against backend="object".
    from repro.query import figure4_query
    from repro.workloads import synthetic_instance

    ptime_query = figure4_query()          # all attack cycles weak+terminal
    ptime_db = synthetic_instance(ptime_query, seed=1, witnesses=4)
    with CertaintySession(ptime_db) as session:        # columnar id kernels
        outcome = session.solve(ptime_query)
        print("\nPTIME band on ids:", outcome.method,  # theorem3-terminal-cycles
              "->", outcome.certain)
        version = ptime_db.mutation_version
        session.candidate_answers(ptime_query)         # memoised at `version`
        ptime_db.add(next(iter(ptime_db.facts)))       # no-op: version unchanged
        print("mutation_version:", version, "->", ptime_db.mutation_version)
    with ViewManager(ptime_db) as manager:
        manager.register(ptime_query)
        with ptime_db.batch():                         # version bumps once
            ptime_db.add(ptime_query.atoms[0].relation.fact("w1", "w2"))
        print("full-refresh causes:", manager.full_refresh_causes())

    # 10. Sharding the engine.  A ShardedCertaintySession partitions the
    #     database by hash of block key across long-lived worker processes,
    #     each holding a persistent shard replica.  Mutations never respawn
    #     the pool: observer hooks accumulate per-shard deltas (newly
    #     interned constants plus integer row ids), flushed on the next
    #     dispatch — O(changed facts), not O(database).  A candidate is
    #     decided on the shard owning its blocks; workers re-validate by
    #     checking the recorded read set stayed shard-local, and any
    #     candidate whose support spans shards (here: Emp blocks key on
    #     name, Dept blocks on dept, so they rarely co-locate) falls back
    #     to a parent-side decide — visible in stats.cross_shard_fallbacks.
    #     Answers are always identical to the sequential session's.
    with ShardedCertaintySession(db, n_shards=2, min_shard_candidates=1) as sharded:
        print("\nsharded answers:", sorted(t[0].value for t in sharded.certain_answers(open_query)))
        db.add(schema["Emp"].fact("kay", "os"))        # delta, not a rebuild
        print("after mutation:", sorted(t[0].value for t in sharded.certain_answers(open_query)))
        stats = sharded.stats
        print(f"delta flushes: {stats.delta_flushes}, "
              f"delta bytes: {stats.delta_bytes_shipped}, "
              f"cross-shard fallbacks: {stats.cross_shard_fallbacks}")

    # 11. Serving certain answers.  A CertaintyService hosts isolated
    #     tenants — each gets a private InternTable (its own constant id
    #     space; tenants can never observe each other's ids), database,
    #     session, and bounded-staleness views — behind band-aware
    #     admission: the classifier's trichotomy is the scheduling policy.
    #     FO-band requests run inline on the submitting thread (the hot
    #     compiled path); PTIME/coNP requests become futures on a bounded
    #     worker pool with per-tenant queue-depth caps (AdmissionRejected
    #     is the back-pressure signal).  Mutations defer view maintenance
    #     under each tenant's StalenessPolicy: with a stale budget of
    #     max_stale_mutations (and an optional refresh_deadline in
    #     seconds), view reads are served stale-but-bounded, and a read
    #     past either bound — or an explicit flush — is identical to a
    #     cold recompute.  Per-tenant memory (the InternTable footprint),
    #     staleness, and admission counters aggregate in svc.stats().
    from repro import CertaintyService, StalenessPolicy

    with CertaintyService(max_workers=2, queue_depth=8) as svc:
        svc.create_tenant(
            "acme",
            facts=parse_facts(
                ["Emp('ada' | 'db')", "Dept('db' | 'Mons')"], schema=schema
            ),
            staleness=StalenessPolicy(max_stale_mutations=4),
        )
        ticket = svc.submit("acme", open_query)        # FO band -> inline
        print("\nadmission:", ticket.outcome,
              "->", sorted(t[0].value for t in ticket.result()))
        cycle = parse_query("R(x | y), S(y | x)")      # PTIME band -> queued
        queued = svc.submit("acme", cycle)
        print("queued band:", queued.band.name,
              "certain:", queued.result(timeout=5.0) == frozenset({()}))
        tenant = svc.tenant("acme")
        view = tenant.register_view(open_query)
        svc.apply("acme", [("add", schema["Emp"].fact("eve", "db"))])
        print("stale read (within budget):",
              sorted(t[0].value for t in view.answers),
              f"({tenant.views.pending_mutations} pending)")
        tenant.flush_views()                           # or read past the bound
        print("after flush:", sorted(t[0].value for t in view.answers))
        totals = svc.stats()["totals"]
        print("service totals:", {k: totals[k] for k in
              ("tenants", "facts", "intern_bytes", "inline_served", "queued")})

    # 12. Surviving restarts.  A DurableStore attached to a database
    #     observes every committed mutation: checkpoint() writes a
    #     checksummed columnar segment snapshot (raw intern values + the
    #     array('q') id columns), and each commit thereafter appends an
    #     interned-id record to a write-ahead changelog (fsync policy via
    #     sync="commit"/"flush"/"never").  After a crash, open() replays
    #     snapshot + changelog tail back to the exact committed state —
    #     same facts, same mutation_version, same certain answers.  A
    #     torn or corrupted tail is treated as uncommitted and dropped at
    #     the first damaged frame.  checkpoint() also rotates the intern
    #     table into a fresh epoch once enough constants have died, so
    #     the id space tracks the *live* facts, not ingestion history.
    import tempfile

    from repro import DurableStore

    with tempfile.TemporaryDirectory() as tmp:
        durable_db = UncertainDatabase(
            parse_facts(["Emp('ada' | 'db')", "Dept('db' | 'Mons')"], schema=schema)
        )
        durable = DurableStore(tmp, sync="commit").attach(durable_db)
        durable_db.add(schema["Emp"].fact("eve", "db"))     # logged + fsynced
        info = durable.checkpoint()
        durable_db.add(schema["Dept"].fact("ai", "Mons"))   # changelog tail
        durable.close()                                     # "crash" here

        recovered = DurableStore.open(tmp)                  # segment + tail
        rdb = recovered.database(schema=schema)
        print("\nrecovered facts:", len(rdb), "of", len(durable_db),
              "at version", rdb.mutation_version)
        print("segment epoch:", info["epoch"],
              "replayed records:", recovered.stats.replayed_records)
        print("answers survive the restart:",
              certain_answers(rdb, open_query)
              == certain_answers(durable_db, open_query))
        recovered.close()

    # 13. Surviving failures.  The same stack stays correct while its
    #     components die mid-request.  repro.faults injects deterministic
    #     faults at the real failure points — worker kills and stalls,
    #     dropped dispatch pipes, torn WAL writes, fsync errors — and the
    #     runtime is built to contain them: the shard supervisor serves
    #     the affected candidates inline, restarts the dead worker with a
    #     fresh bootstrap (backoff-gated), and if a shard keeps dying
    #     degrades sharded -> parallel -> serial, probing its way back up
    #     once the faults clear.  Two deadlines bound every dispatch: the
    #     worker's dispatch window (missing it kills the worker) and the
    #     caller's end-to-end request budget (blowing it raises
    #     DeadlineExceeded but leaves healthy workers alive — their late
    #     replies are fenced by per-command sequence ids, never paired
    #     with a later request).  The service's per-tenant circuit breaker
    #     sheds queued-band load (CircuitOpen) while FO-band requests stay
    #     inline.  Answers under any fault schedule equal a fault-free
    #     recompute — failures cost latency, never correctness.
    from repro import FaultPlan, FaultSpec, inject

    chaos_db = UncertainDatabase(
        parse_facts(
            ["Emp('ada' | 'db')", "Emp('bob' | 'db')", "Dept('db' | 'Mons')"],
            schema=schema,
        )
    )
    for i in range(30):  # enough candidates to engage the shard workers
        chaos_db.add(schema["Emp"].fact(f"e{i}", "db"))
    expected = certain_answers(chaos_db, open_query)
    plan = FaultPlan(
        (
            FaultSpec("shard.worker.command", "kill", at=2, shard=0),
            FaultSpec("shard.pipe", "drop", at=5),
        )
    )
    with inject(plan):
        sharded = ShardedCertaintySession(
            chaos_db, n_shards=2, min_shard_candidates=1, restart_backoff=0.0
        )
        try:
            first = sharded.certain_answers(open_query)   # worker dies mid-call
            second = sharded.certain_answers(open_query)  # restarted + re-bootstrapped
        finally:
            stats = sharded.stats
            sharded.close()
    print("\nanswers under injected faults match:",
          first == expected and second == expected)
    print("worker failures:", stats.worker_failures,
          "restarts:", stats.worker_restarts,
          "degradations:", stats.degradations)


if __name__ == "__main__":
    main()
