"""The conference-planning scenario of Figure 1, end to end.

Reproduces the paper's introductory example: an uncertain database with two
conflicting blocks, its four repairs, the query "Will Rome host some A
conference?" (true in three of the four repairs, hence not certain), plus
repair counting and the uniform-repair probability.

Run with:  python examples/conference_planning.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import classify, enumerate_repairs, is_certain, parse_query, satisfies
from repro.certainty import brute_force_with_certificate, certain_answers
from repro.counting import counting_summary
from repro.probability import BIDDatabase, probability_by_worlds
from repro.workloads import figure1_database, figure1_query


def main() -> None:
    db = figure1_database()
    query = figure1_query()

    print("Figure 1 — uncertain conference database")
    print(db.pretty())

    print("\nrepairs and query satisfaction (q = ∃x∃y C(x,y,'Rome') ∧ R(x,'A')):")
    for index, repair in enumerate(enumerate_repairs(db), start=1):
        verdict = "satisfies q" if satisfies(repair, query) else "FALSIFIES q"
        rendered = ", ".join(sorted(str(f) for f in repair))
        print(f"  repair {index}: {verdict}\n    {rendered}")

    print("\nclassification:", classify(query).band)
    print("certain?", is_certain(db, query))

    certificate = brute_force_with_certificate(db, query)
    print("falsifying repair (the 'no' certificate):")
    for fact in sorted(certificate.falsifying_repair, key=str):
        print("   ", fact)

    satisfying, total, frequency = counting_summary(db, query)
    print(f"\n#CERTAINTY: {satisfying} of {total} repairs satisfy q (frequency {frequency})")
    bid = BIDDatabase.uniform_repairs(db)
    print("uniform-repair probability Pr(q):", probability_by_worlds(bid, query))

    # The non-Boolean variant: which conferences are certainly A-ranked?
    open_query = parse_query("R(x | 'A')", free=["x"], schema=db.schema)
    answers = certain_answers(db, open_query)
    print("conferences certainly ranked A:", sorted(value.value for (value,) in answers))


if __name__ == "__main__":
    main()
