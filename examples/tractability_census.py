"""Chart the tractability frontier over a corpus of queries.

Classifies the paper's named queries plus a batch of random acyclic queries,
prints the frontier table (query → complexity band → tractable? → FO?), and
summarises how the bands are populated — the executable counterpart of the
classification charted in the paper.

Run with:  python examples/tractability_census.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import classify_corpus, frontier_table
from repro.core import summarize_frontier
from repro.query import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
)
from repro.workloads import random_corpus


def main() -> None:
    named = [
        ("q0 (Kolaitis–Pema)", kolaitis_pema_q0()),
        ("q1 (Figure 2)", figure2_q1()),
        ("Figure 4 query", figure4_query()),
        ("C(2)", cycle_query_c(2)),
        ("C(3)", cycle_query_c(3)),
        ("AC(3)", cycle_query_ac(3)),
        ("AC(5)", cycle_query_ac(5)),
        ("{R(x|y), S(y|z)}", fuxman_miller_cfree_example()),
    ]
    labels = [label for label, _ in named]
    queries = [query for _, query in named]

    print("named queries of the paper")
    print(frontier_table(classify_corpus(queries), labels=labels))

    random_queries = random_corpus(30, seed=2013)
    classifications = classify_corpus(random_queries)
    print("\nrandom acyclic self-join-free corpus (30 queries)")
    print(summarize_frontier(classifications))

    print("\nexample explanation (Figure 4 query):")
    print(classify_corpus([figure4_query()])[0].explain())


if __name__ == "__main__":
    main()
