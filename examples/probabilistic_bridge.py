"""Uncertainty and probability (Section 7): BID databases, IsSafe, Pr(q).

Turns the Figure 1 database into a block-independent-disjoint probabilistic
database with uniform repair probabilities, evaluates query probabilities,
checks Proposition 1, and compares the CERTAINTY and PROBABILITY frontiers
on a handful of queries (Theorem 6 / Corollary 2).

Run with:  python examples/probabilistic_bridge.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import is_certain, parse_query
from repro.probability import (
    BIDDatabase,
    compare_frontiers,
    frontier_comparison_table,
    probability_by_worlds,
    probability_safe_plan,
    proposition1_holds,
    safety_trace,
)
from repro.query import cycle_query_ac, figure2_q1, fuxman_miller_cfree_example, kolaitis_pema_q0
from repro.workloads import figure1_database, figure1_query


def main() -> None:
    db = figure1_database()
    query = figure1_query()
    bid = BIDDatabase.uniform_repairs(db)

    print("Figure 1 database as a BID probabilistic database (uniform repairs)")
    for block in db.blocks():
        for fact in sorted(block, key=str):
            print(f"  Pr({fact}) = {bid.probability(fact)}")

    print("\nPr(q) by world enumeration:", probability_by_worlds(bid, query))
    print("db ∈ CERTAINTY(q)?", is_certain(db, query))
    print("Proposition 1 holds?", proposition1_holds(bid, query))

    safe_query = parse_query("A(x | y), B(x | z)")
    verdict, trace = safety_trace(safe_query)
    print(f"\nIsSafe({safe_query}) = {verdict}")
    for step in trace:
        print("   ", step)
    from repro.workloads import uniform_random_instance

    sample = uniform_random_instance(safe_query, seed=1, domain_size=3, facts_per_relation=5)
    sample_bid = BIDDatabase.uniform_repairs(sample)
    print("safe-plan Pr(q):", probability_safe_plan(sample_bid, safe_query))
    print("world-sum Pr(q):", probability_by_worlds(sample_bid, safe_query))

    print("\nCERTAINTY frontier versus PROBABILITY frontier (Theorem 6 / Corollary 2):")
    comparisons = compare_frontiers(
        [safe_query, fuxman_miller_cfree_example(), figure2_q1(), kolaitis_pema_q0(), cycle_query_ac(2)]
    )
    print(frontier_comparison_table(comparisons))
    print(
        "\nNote how every safe query is FO-expressible (Theorem 6), while many "
        "FO-expressible queries are unsafe — the probabilistic route gives no "
        "new tractable CERTAINTY cases (Section 7.2)."
    )


if __name__ == "__main__":
    main()
