"""AC(k) and C(k): the Theorem 4 graph algorithm on the Figure 6 instance.

Builds the Figure 6 database, shows that it is not certain for AC(3), prints
a falsifying repair found by the brute-force oracle together with the two
hand-crafted repairs of Figure 7, and then runs the polynomial algorithm on
progressively larger ring instances where repair enumeration would be
hopeless.

Run with:  python examples/cycle_queries.py
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import classify, count_repairs, satisfies
from repro.certainty import brute_force_with_certificate, certain_cycle_query
from repro.model.repairs import is_repair
from repro.query import cycle_query_ac, cycle_query_c
from repro.workloads import figure6_database, figure7_falsifying_repairs, ring_instance


def main() -> None:
    query = cycle_query_ac(3)
    db = figure6_database()

    print("AC(3) =", query)
    print("classification:", classify(query).band)
    print("\nFigure 6 database:")
    print(db.pretty())

    certain = certain_cycle_query(db, query)
    print("\ncertain (Theorem 4 graph algorithm)?", certain)

    certificate = brute_force_with_certificate(db, query)
    print("falsifying repair found by the oracle:")
    for fact in sorted(certificate.falsifying_repair, key=str):
        print("   ", fact)

    print("\nthe two Figure 7 repairs:")
    for index, repair in enumerate(figure7_falsifying_repairs(), start=1):
        assert is_repair(db, repair) and not satisfies(repair, query)
        kind = "unencoded triangle" if index == 1 else "long 6-cycle"
        print(f"  repair {index} ({kind}) falsifies AC(3)")

    print("\nC(3) classification:", classify(cycle_query_c(3)).band)

    print("\nscaling the Theorem 4 algorithm on ring instances:")
    print(f"{'copies':>8} {'facts':>8} {'repairs':>12} {'certain':>8} {'seconds':>9}")
    for copies in (4, 8, 16, 32):
        big_query, big_db = ring_instance(3, copies=copies, chords=copies, encoded_fraction=0.5, seed=copies)
        start = time.perf_counter()
        answer = certain_cycle_query(big_db, big_query)
        elapsed = time.perf_counter() - start
        print(
            f"{copies:>8} {len(big_db):>8} {count_repairs(big_db):>12} "
            f"{str(answer):>8} {elapsed:>9.4f}"
        )


if __name__ == "__main__":
    main()
