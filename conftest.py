"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so that the test suite and benchmarks can run
even when the package has not been installed (e.g. in offline environments
where ``pip install -e .`` cannot build its isolated environment; use
``python setup.py develop`` or rely on this path hook instead).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
